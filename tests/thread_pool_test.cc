#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace hcpath {
namespace {

TEST(ThreadPool, EffectiveThreads) {
  EXPECT_EQ(ThreadPool::EffectiveThreads(4), 4u);
  EXPECT_EQ(ThreadPool::EffectiveThreads(1), 1u);
  EXPECT_GE(ThreadPool::EffectiveThreads(0), 1u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForZeroAndOne) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, SubmittedTasksAllRunBeforeDestruction) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
  }  // destructor drains the queues
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, ExceptionOfLowestIndexPropagates) {
  ThreadPool pool(4);
  for (int rep = 0; rep < 5; ++rep) {
    try {
      pool.ParallelFor(64, [](size_t i) {
        if (i == 7) throw std::runtime_error("seven");
        if (i == 23) throw std::runtime_error("twenty-three");
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "seven");
    }
  }
}

TEST(ThreadPool, ExceptionDoesNotAbandonRemainingTasks) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(128);
  EXPECT_THROW(pool.ParallelFor(128,
                                [&](size_t i) {
                                  hits[i].fetch_add(1);
                                  if (i == 0) throw std::runtime_error("x");
                                }),
               std::runtime_error);
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, StealingSpreadsSkewedWork) {
  ThreadPool pool(4);
  // Barrier: four tasks that each spin until all four have started can
  // only complete on four distinct threads (a spinning thread cannot claim
  // a second task), which exercises pickup across all the round-robined
  // deques regardless of scheduler timing. The helping caller may be one
  // of the four.
  std::atomic<int> started{0};
  std::mutex mu;
  std::set<std::thread::id> participants;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  pool.ParallelFor(4, [&](size_t) {
    {
      std::lock_guard<std::mutex> lk(mu);
      participants.insert(std::this_thread::get_id());
    }
    started.fetch_add(1);
    // Deadline escape so a scheduling pathology fails loudly instead of
    // hanging the suite.
    while (started.load() < 4 && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
  });
  EXPECT_EQ(started.load(), 4);
  EXPECT_EQ(participants.size(), 4u);

  // Skew: one long task among many tiny ones; everything still completes.
  std::atomic<int> done{0};
  pool.ParallelFor(64, [&](size_t i) {
    if (i == 0) std::this_thread::sleep_for(std::chrono::milliseconds(50));
    done.fetch_add(1);
  });
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> leaf{0};
  pool.ParallelFor(4, [&](size_t) {
    pool.ParallelFor(4, [&](size_t) { leaf.fetch_add(1); });
  });
  EXPECT_EQ(leaf.load(), 16);
}

TEST(ThreadPool, WorkerSubmitTargetsOwnQueue) {
  ThreadPool pool(2);
  std::atomic<int> inner{0};
  pool.ParallelFor(8, [&](size_t) {
    pool.Submit([&inner] { inner.fetch_add(1); });
  });
  // Drain: destructor-equivalent barrier via another ParallelFor.
  while (pool.TryRunOneTask()) {
  }
  pool.ParallelFor(2, [](size_t) {});
  // All inner tasks eventually run; give stragglers a bounded grace period
  // (generous: TSan on a loaded single-core box is slow).
  for (int spin = 0; spin < 10000 && inner.load() < 8; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(inner.load(), 8);
}

}  // namespace
}  // namespace hcpath
