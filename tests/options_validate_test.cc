// BatchOptions::Validate and its wiring: malformed option values must be
// rejected with InvalidArgument at every pipeline entry point (previously
// they were silently accepted and steered clustering/detection).

#include <gtest/gtest.h>

#include <limits>

#include "core/basic_enum.h"
#include "core/batch_enum.h"
#include "core/enumerator.h"
#include "core/options.h"
#include "service/path_engine.h"
#include "test_graphs.h"

namespace hcpath {
namespace {

TEST(OptionsValidate, DefaultsAreValid) {
  BatchOptions opt;
  EXPECT_TRUE(opt.Validate().ok());
}

TEST(OptionsValidate, GammaBounds) {
  BatchOptions opt;
  for (double ok : {0.0, 0.5, 1.0}) {
    opt.gamma = ok;
    EXPECT_TRUE(opt.Validate().ok()) << ok;
  }
  for (double bad : {-0.001, 1.001, -5.0, 42.0}) {
    opt.gamma = bad;
    Status st = opt.Validate();
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << bad;
  }
  opt.gamma = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(opt.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(OptionsValidate, NegativeMinDominatingBudget) {
  BatchOptions opt;
  opt.min_dominating_budget = 0;
  EXPECT_TRUE(opt.Validate().ok());
  opt.min_dominating_budget = -1;
  EXPECT_EQ(opt.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(OptionsValidate, NegativeDominatingCap) {
  BatchOptions opt;
  opt.max_dominating_per_query = 0.0;  // 0 = unlimited, valid
  EXPECT_TRUE(opt.Validate().ok());
  opt.max_dominating_per_query = -2.5;
  EXPECT_EQ(opt.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(OptionsValidate, RejectedAtEveryEntryPoint) {
  const Graph g = PaperFigure1Graph();
  const std::vector<PathQuery> queries = PaperFigure1Queries();
  BatchOptions bad;
  bad.gamma = 1.5;

  CountingSink sink(queries.size());
  EXPECT_EQ(RunBatchEnum(g, queries, bad, false, &sink, nullptr).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(RunBasicEnum(g, queries, bad, false, &sink, nullptr).code(),
            StatusCode::kInvalidArgument);

  BatchPathEnumerator enumerator(g);
  for (Algorithm algo :
       {Algorithm::kPathEnum, Algorithm::kBasicEnum, Algorithm::kBasicEnumPlus,
        Algorithm::kBatchEnum, Algorithm::kBatchEnumPlus}) {
    BatchOptions opt = bad;
    opt.algorithm = algo;
    auto result = enumerator.Run(queries, opt);
    EXPECT_FALSE(result.ok()) << AlgorithmName(algo);
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
        << AlgorithmName(algo);
  }

  // Nothing was emitted by any rejected run.
  EXPECT_EQ(sink.Total(), 0u);
}

TEST(OptionsValidate, AdmissionDefaultsAreValid) {
  AdmissionOptions adm;
  EXPECT_TRUE(adm.Validate().ok());
}

TEST(OptionsValidate, AdmissionRejectsZeroQueueBudgets) {
  AdmissionOptions adm;
  adm.max_queued_queries = 0;
  EXPECT_EQ(adm.Validate().code(), StatusCode::kInvalidArgument);
  adm = AdmissionOptions();
  adm.max_queued_bytes = 0;
  EXPECT_EQ(adm.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(OptionsValidate, AdmissionRejectsBadTenantWeights) {
  AdmissionOptions adm;
  adm.tenant_weights = {{"ok", 2.0}, {"bad", -1.0}};
  Status st = adm.Validate();
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("bad"), std::string::npos) << st;

  adm.tenant_weights = {{"zero", 0.0}};  // zero weight would never drain
  EXPECT_EQ(adm.Validate().code(), StatusCode::kInvalidArgument);
  adm.tenant_weights = {{"nan", std::numeric_limits<double>::quiet_NaN()}};
  EXPECT_EQ(adm.Validate().code(), StatusCode::kInvalidArgument);
  adm.tenant_weights.clear();
  for (double bad : {0.0, -3.0, std::numeric_limits<double>::quiet_NaN()}) {
    adm.default_tenant_weight = bad;
    EXPECT_EQ(adm.Validate().code(), StatusCode::kInvalidArgument) << bad;
  }
}

TEST(OptionsValidate, AdmissionRejectsInconsistentShedThresholds) {
  AdmissionOptions adm;
  adm.shed_low_watermark = 0.9;
  adm.shed_high_watermark = 0.5;  // low > high
  Status st = adm.Validate();
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("inconsistent"), std::string::npos) << st;

  for (double bad : {0.0, -0.1, 1.5, std::numeric_limits<double>::quiet_NaN()}) {
    adm = AdmissionOptions();
    adm.shed_low_watermark = bad;
    EXPECT_EQ(adm.Validate().code(), StatusCode::kInvalidArgument) << bad;
    adm = AdmissionOptions();
    adm.shed_high_watermark = bad;  // out of range, or below the low mark
    EXPECT_EQ(adm.Validate().code(), StatusCode::kInvalidArgument) << bad;
  }
  adm = AdmissionOptions();
  adm.shed_patience_seconds = -1.0;
  EXPECT_EQ(adm.Validate().code(), StatusCode::kInvalidArgument);
  adm.shed_patience_seconds = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(adm.Validate().code(), StatusCode::kInvalidArgument);
  // Infinity is rejected too: an infinite shed deadline is not
  // representable by the wall clock ("never shed" = low watermark 1.0).
  adm.shed_patience_seconds = std::numeric_limits<double>::infinity();
  EXPECT_EQ(adm.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(OptionsValidate, AdmissionRejectedAtEngineConstruction) {
  // The engine entry point: a bad admission config parks the engine the
  // same way a bad batch config does — status() carries the error and
  // every Submit/RunBatch/StepDispatch is refused.
  const Graph g = PaperFigure1Graph();
  PathEngineOptions opt;
  opt.manual_dispatch = true;
  opt.admission.tenant_weights = {{"t", -2.0}};
  PathEngine engine(g, opt);
  EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);
  auto future = engine.Submit("t", {0, 11, 5});
  EXPECT_EQ(future.get().status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.RunBatch({{0, 11, 5}}, nullptr).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.StepDispatch(), 0u);
}

TEST(OptionsValidate, ValidationFailureBeatsQueryValidation) {
  // Options are checked before queries, so the error is stable even for
  // batches that would also fail query validation.
  const Graph g = PaperFigure1Graph();
  std::vector<PathQuery> queries = {{0, 0, 3}};  // s == t, also invalid
  BatchOptions bad;
  bad.min_dominating_budget = -7;
  Status st = RunBatchEnum(g, queries, bad, true, nullptr, nullptr);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("min_dominating_budget"), std::string::npos)
      << st;
}

}  // namespace
}  // namespace hcpath
