// BatchOptions::Validate and its wiring: malformed option values must be
// rejected with InvalidArgument at every pipeline entry point (previously
// they were silently accepted and steered clustering/detection).

#include <gtest/gtest.h>

#include <limits>

#include "core/basic_enum.h"
#include "core/batch_enum.h"
#include "core/enumerator.h"
#include "core/options.h"
#include "test_graphs.h"

namespace hcpath {
namespace {

TEST(OptionsValidate, DefaultsAreValid) {
  BatchOptions opt;
  EXPECT_TRUE(opt.Validate().ok());
}

TEST(OptionsValidate, GammaBounds) {
  BatchOptions opt;
  for (double ok : {0.0, 0.5, 1.0}) {
    opt.gamma = ok;
    EXPECT_TRUE(opt.Validate().ok()) << ok;
  }
  for (double bad : {-0.001, 1.001, -5.0, 42.0}) {
    opt.gamma = bad;
    Status st = opt.Validate();
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << bad;
  }
  opt.gamma = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(opt.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(OptionsValidate, NegativeMinDominatingBudget) {
  BatchOptions opt;
  opt.min_dominating_budget = 0;
  EXPECT_TRUE(opt.Validate().ok());
  opt.min_dominating_budget = -1;
  EXPECT_EQ(opt.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(OptionsValidate, NegativeDominatingCap) {
  BatchOptions opt;
  opt.max_dominating_per_query = 0.0;  // 0 = unlimited, valid
  EXPECT_TRUE(opt.Validate().ok());
  opt.max_dominating_per_query = -2.5;
  EXPECT_EQ(opt.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(OptionsValidate, RejectedAtEveryEntryPoint) {
  const Graph g = PaperFigure1Graph();
  const std::vector<PathQuery> queries = PaperFigure1Queries();
  BatchOptions bad;
  bad.gamma = 1.5;

  CountingSink sink(queries.size());
  EXPECT_EQ(RunBatchEnum(g, queries, bad, false, &sink, nullptr).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(RunBasicEnum(g, queries, bad, false, &sink, nullptr).code(),
            StatusCode::kInvalidArgument);

  BatchPathEnumerator enumerator(g);
  for (Algorithm algo :
       {Algorithm::kPathEnum, Algorithm::kBasicEnum, Algorithm::kBasicEnumPlus,
        Algorithm::kBatchEnum, Algorithm::kBatchEnumPlus}) {
    BatchOptions opt = bad;
    opt.algorithm = algo;
    auto result = enumerator.Run(queries, opt);
    EXPECT_FALSE(result.ok()) << AlgorithmName(algo);
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
        << AlgorithmName(algo);
  }

  // Nothing was emitted by any rejected run.
  EXPECT_EQ(sink.Total(), 0u);
}

TEST(OptionsValidate, ValidationFailureBeatsQueryValidation) {
  // Options are checked before queries, so the error is stable even for
  // batches that would also fail query validation.
  const Graph g = PaperFigure1Graph();
  std::vector<PathQuery> queries = {{0, 0, 3}};  // s == t, also invalid
  BatchOptions bad;
  bad.min_dominating_budget = -7;
  Status st = RunBatchEnum(g, queries, bad, true, nullptr, nullptr);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("min_dominating_budget"), std::string::npos)
      << st;
}

}  // namespace
}  // namespace hcpath
