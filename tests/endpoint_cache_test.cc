// EndpointDistanceCache: LRU behavior, budgets, counters, and the
// bit-identity of served maps — plus the DistanceIndex cache integration
// (hits skip BFS but produce the exact same index).

#include <gtest/gtest.h>

#include <vector>

#include "bfs/msbfs.h"
#include "core/basic_enum.h"
#include "core/batch_context.h"
#include "graph/generators.h"
#include "index/distance_index.h"
#include "index/endpoint_cache.h"
#include "test_graphs.h"
#include "util/rng.h"

namespace hcpath {
namespace {

VertexDistMap MakeMap(const Graph& g, VertexId source, Hop cap,
                      Direction dir) {
  MsBfsResult r = MultiSourceBfs(g, {source}, {cap}, dir);
  return std::move(r.per_source[0]);
}

/// Content equality over the whole universe (the property the coherence
/// argument needs: same Lookup result for every vertex).
void ExpectSameContent(const Graph& g, const VertexDistMap& a,
                       const VertexDistMap& b) {
  ASSERT_EQ(a.size(), b.size());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(a.Lookup(v), b.Lookup(v)) << "vertex " << v;
  }
  EXPECT_EQ(a.SortedKeys(), b.SortedKeys());
}

TEST(EndpointCache, MissThenHit) {
  const Graph g = PaperFigure1Graph();
  EndpointDistanceCache cache(/*max_entries=*/8);
  EXPECT_EQ(cache.Lookup(0, Direction::kForward, 5), nullptr);
  EXPECT_EQ(cache.misses(), 1u);

  cache.Insert(0, Direction::kForward, 5,
               MakeMap(g, 0, 5, Direction::kForward));
  const VertexDistMap* served = cache.Lookup(0, Direction::kForward, 5);
  ASSERT_NE(served, nullptr);
  EXPECT_EQ(cache.hits(), 1u);
  ExpectSameContent(g, *served, MakeMap(g, 0, 5, Direction::kForward));
}

TEST(EndpointCache, KeyIsVertexDirectionAndCap) {
  const Graph g = PaperFigure1Graph();
  EndpointDistanceCache cache(8);
  cache.Insert(0, Direction::kForward, 5,
               MakeMap(g, 0, 5, Direction::kForward));
  // Different direction or different cap must not alias.
  EXPECT_EQ(cache.Lookup(0, Direction::kBackward, 5), nullptr);
  EXPECT_EQ(cache.Lookup(0, Direction::kForward, 4), nullptr);
  EXPECT_NE(cache.Lookup(0, Direction::kForward, 5), nullptr);
}

TEST(EndpointCache, LruEvictionOrder) {
  const Graph g = PaperFigure1Graph();
  EndpointDistanceCache cache(/*max_entries=*/2);
  cache.Insert(0, Direction::kForward, 3, MakeMap(g, 0, 3, Direction::kForward));
  cache.Insert(1, Direction::kForward, 3, MakeMap(g, 1, 3, Direction::kForward));
  // Touch vertex 0 so vertex 1 becomes the LRU victim.
  EXPECT_NE(cache.Lookup(0, Direction::kForward, 3), nullptr);
  cache.Insert(2, Direction::kForward, 3, MakeMap(g, 2, 3, Direction::kForward));
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_NE(cache.Lookup(0, Direction::kForward, 3), nullptr);
  EXPECT_EQ(cache.Lookup(1, Direction::kForward, 3), nullptr);  // evicted
  EXPECT_NE(cache.Lookup(2, Direction::kForward, 3), nullptr);
}

TEST(EndpointCache, ByteBudgetEvicts) {
  const Graph g = PaperFigure1Graph();
  // A tiny byte budget still keeps at least one entry (the newest).
  EndpointDistanceCache cache(/*max_entries=*/64, /*max_bytes=*/1);
  cache.Insert(0, Direction::kForward, 5, MakeMap(g, 0, 5, Direction::kForward));
  cache.Insert(1, Direction::kForward, 5, MakeMap(g, 1, 5, Direction::kForward));
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_GE(cache.evictions(), 1u);
  EXPECT_NE(cache.Lookup(1, Direction::kForward, 5), nullptr);
}

TEST(EndpointCache, ZeroEntriesDisables) {
  const Graph g = PaperFigure1Graph();
  EndpointDistanceCache cache(/*max_entries=*/0);
  cache.Insert(0, Direction::kForward, 5, MakeMap(g, 0, 5, Direction::kForward));
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.Lookup(0, Direction::kForward, 5), nullptr);
}

TEST(EndpointCache, InvalidateDropsEntries) {
  const Graph g = PaperFigure1Graph();
  EndpointDistanceCache cache(8);
  cache.Insert(0, Direction::kForward, 5, MakeMap(g, 0, 5, Direction::kForward));
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_GT(cache.bytes(), 0u);
  cache.Invalidate();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.Lookup(0, Direction::kForward, 5), nullptr);
}

/// The integration property behind the whole feature: an index built with
/// a warm cache equals a cold-built index in every observable way.
TEST(EndpointCache, WarmIndexBuildIsContentIdentical) {
  Rng rng(7);
  const Graph g = *GenerateSmallWorld(400, 4, 0.1, rng);
  std::vector<PathQuery> queries = {{0, 50, 5}, {3, 60, 4}, {0, 70, 5},
                                    {12, 50, 3}, {3, 60, 4}};

  BatchContext cold_ctx;  // no cache
  DistanceIndex cold;
  BuildBatchIndex(g, queries, &cold, nullptr);

  EndpointDistanceCache cache(64);
  BatchContext warm_ctx;
  warm_ctx.distance_cache = &cache;
  DistanceIndex warm;
  // First build fills the cache (all misses)...
  BuildBatchIndex(g, queries, &warm, nullptr, nullptr, &warm_ctx);
  EXPECT_EQ(warm.cache_hits(), 0u);
  EXPECT_GT(warm.cache_misses(), 0u);
  // ...second build is served from it.
  BuildBatchIndex(g, queries, &warm, nullptr, nullptr, &warm_ctx);
  EXPECT_GT(warm.cache_hits(), 0u);
  EXPECT_EQ(warm.cache_misses(), 0u);

  ASSERT_EQ(warm.num_queries(), cold.num_queries());
  for (size_t i = 0; i < queries.size(); ++i) {
    ExpectSameContent(g, warm.FromSourceMap(i), cold.FromSourceMap(i));
    ExpectSameContent(g, warm.ToTargetMap(i), cold.ToTargetMap(i));
  }
  EXPECT_EQ(warm.MinDistFromAnySource(), cold.MinDistFromAnySource());
  EXPECT_EQ(warm.MinDistToAnyTarget(), cold.MinDistToAnyTarget());
}

/// Duplicated endpoints with distinct caps are distinct keys, and
/// batch-internal duplicates resolve to one probe per unique key.
TEST(EndpointCache, PerKeyCounting) {
  const Graph g = PaperFigure1Graph();
  EndpointDistanceCache cache(64);
  BatchContext ctx;
  ctx.distance_cache = &cache;
  // Same source vertex 0 under caps 5 and 3 (two keys), plus a clone of
  // the cap-5 query (same key).
  std::vector<PathQuery> queries = {{0, 11, 5}, {0, 13, 3}, {0, 11, 5}};
  DistanceIndex index;
  BuildBatchIndex(g, queries, &index, nullptr, nullptr, &ctx);
  // Forward: 2 unique source keys missed. Backward: targets 11 (cap 5),
  // 13 (cap 3), 11 (cap 5) -> 2 unique keys missed.
  EXPECT_EQ(index.cache_misses(), 4u);
  EXPECT_EQ(index.cache_hits(), 0u);
  DistanceIndex again;
  BuildBatchIndex(g, queries, &again, nullptr, nullptr, &ctx);
  EXPECT_EQ(again.cache_hits(), 4u);
  EXPECT_EQ(again.cache_misses(), 0u);
}

}  // namespace
}  // namespace hcpath
