// EndpointDistanceCache: LRU behavior, budgets, counters, byte-accounting
// invariants, epoch versioning with cone-precise invalidation, and the
// bit-identity of served maps — plus the DistanceIndex cache integration
// (hits skip BFS but produce the exact same index).

#include <gtest/gtest.h>

#include <optional>
#include <utility>
#include <vector>

#include "bfs/msbfs.h"
#include "core/basic_enum.h"
#include "core/batch_context.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "index/distance_index.h"
#include "index/endpoint_cache.h"
#include "test_graphs.h"
#include "util/rng.h"

namespace hcpath {
namespace {

VertexDistMap MakeMap(const Graph& g, VertexId source, Hop cap,
                      Direction dir) {
  MsBfsResult r = MultiSourceBfs(g, {source}, {cap}, dir);
  return std::move(r.per_source[0]);
}

/// Lookup convenience: the served map, or nullopt on a miss.
std::optional<VertexDistMap> Get(EndpointDistanceCache& cache, VertexId v,
                                 Direction dir, Hop cap, uint64_t epoch = 0) {
  VertexDistMap out;
  if (!cache.Lookup(v, dir, cap, epoch, &out)) return std::nullopt;
  return out;
}

/// Content equality over the whole universe (the property the coherence
/// argument needs: same Lookup result for every vertex).
void ExpectSameContent(const Graph& g, const VertexDistMap& a,
                       const VertexDistMap& b) {
  ASSERT_EQ(a.size(), b.size());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(a.Lookup(v), b.Lookup(v)) << "vertex " << v;
  }
  EXPECT_EQ(a.SortedKeys(), b.SortedKeys());
}

/// The byte ledger must equal the sum over live entries at all times —
/// the satellite regression for the overwrite double-count.
void ExpectBytesConsistent(const EndpointDistanceCache& cache) {
  EXPECT_EQ(cache.bytes(), cache.DebugSumEntryBytes());
}

TEST(EndpointCache, MissThenHit) {
  const Graph g = PaperFigure1Graph();
  EndpointDistanceCache cache(/*max_entries=*/8);
  EXPECT_FALSE(Get(cache, 0, Direction::kForward, 5).has_value());
  EXPECT_EQ(cache.misses(), 1u);

  cache.Insert(0, Direction::kForward, 5, /*epoch=*/0,
               MakeMap(g, 0, 5, Direction::kForward));
  std::optional<VertexDistMap> served = Get(cache, 0, Direction::kForward, 5);
  ASSERT_TRUE(served.has_value());
  EXPECT_EQ(cache.hits(), 1u);
  ExpectSameContent(g, *served, MakeMap(g, 0, 5, Direction::kForward));
}

TEST(EndpointCache, KeyIsVertexDirectionAndCap) {
  const Graph g = PaperFigure1Graph();
  EndpointDistanceCache cache(8);
  cache.Insert(0, Direction::kForward, 5, 0,
               MakeMap(g, 0, 5, Direction::kForward));
  // Different direction or different cap must not alias.
  EXPECT_FALSE(Get(cache, 0, Direction::kBackward, 5).has_value());
  EXPECT_FALSE(Get(cache, 0, Direction::kForward, 4).has_value());
  EXPECT_TRUE(Get(cache, 0, Direction::kForward, 5).has_value());
}

TEST(EndpointCache, LruEvictionOrder) {
  const Graph g = PaperFigure1Graph();
  EndpointDistanceCache cache(/*max_entries=*/2);
  cache.Insert(0, Direction::kForward, 3, 0,
               MakeMap(g, 0, 3, Direction::kForward));
  cache.Insert(1, Direction::kForward, 3, 0,
               MakeMap(g, 1, 3, Direction::kForward));
  // Touch vertex 0 so vertex 1 becomes the LRU victim.
  EXPECT_TRUE(Get(cache, 0, Direction::kForward, 3).has_value());
  cache.Insert(2, Direction::kForward, 3, 0,
               MakeMap(g, 2, 3, Direction::kForward));
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_TRUE(Get(cache, 0, Direction::kForward, 3).has_value());
  EXPECT_FALSE(Get(cache, 1, Direction::kForward, 3).has_value());  // evicted
  EXPECT_TRUE(Get(cache, 2, Direction::kForward, 3).has_value());
  ExpectBytesConsistent(cache);
}

TEST(EndpointCache, ByteBudgetEvicts) {
  const Graph g = PaperFigure1Graph();
  // A tiny byte budget still keeps at least one entry (the newest).
  EndpointDistanceCache cache(/*max_entries=*/64, /*max_bytes=*/1);
  cache.Insert(0, Direction::kForward, 5, 0,
               MakeMap(g, 0, 5, Direction::kForward));
  cache.Insert(1, Direction::kForward, 5, 0,
               MakeMap(g, 1, 5, Direction::kForward));
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_GE(cache.evictions(), 1u);
  EXPECT_TRUE(Get(cache, 1, Direction::kForward, 5).has_value());
  ExpectBytesConsistent(cache);
}

TEST(EndpointCache, ZeroEntriesDisables) {
  const Graph g = PaperFigure1Graph();
  EndpointDistanceCache cache(/*max_entries=*/0);
  cache.Insert(0, Direction::kForward, 5, 0,
               MakeMap(g, 0, 5, Direction::kForward));
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_FALSE(Get(cache, 0, Direction::kForward, 5).has_value());
}

TEST(EndpointCache, InvalidateDropsEntries) {
  const Graph g = PaperFigure1Graph();
  EndpointDistanceCache cache(8);
  cache.Insert(0, Direction::kForward, 5, 0,
               MakeMap(g, 0, 5, Direction::kForward));
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_GT(cache.bytes(), 0u);
  cache.Invalidate();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.entries_invalidated(), 1u);
  EXPECT_FALSE(Get(cache, 0, Direction::kForward, 5).has_value());
  ExpectBytesConsistent(cache);
}

/// Satellite regression: replacing an entry's content (same key, newer
/// epoch) must charge the byte ledger for exactly the delta — the old
/// accounting double-counted the key on overwrite, so bytes() crept up
/// until the budget evicted live entries early.
TEST(EndpointCache, ReplaceDoesNotDoubleCountBytes) {
  const Graph g = PaperFigure1Graph();
  EndpointDistanceCache cache(/*max_entries=*/8);
  cache.Insert(0, Direction::kForward, 5, /*epoch=*/0,
               MakeMap(g, 0, 5, Direction::kForward));
  const uint64_t one_entry_bytes = cache.bytes();
  ExpectBytesConsistent(cache);

  // Same key at a newer epoch: content replaced in place, one entry.
  for (uint64_t epoch = 1; epoch <= 5; ++epoch) {
    cache.Insert(0, Direction::kForward, 5, epoch,
                 MakeMap(g, 0, 5, Direction::kForward));
    EXPECT_EQ(cache.entries(), 1u);
    EXPECT_EQ(cache.bytes(), one_entry_bytes) << "epoch " << epoch;
    ExpectBytesConsistent(cache);
  }

  // Re-inserting at the entry's current epoch is a pure recency refresh.
  cache.Insert(0, Direction::kForward, 5, 5,
               MakeMap(g, 0, 5, Direction::kForward));
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.bytes(), one_entry_bytes);
  ExpectBytesConsistent(cache);
}

/// The full ledger invariant under a mixed workload: inserts, overwrites,
/// evictions, epoch invalidations — bytes() == sum over entries, always.
TEST(EndpointCache, ByteAccountingInvariantUnderChurn) {
  Rng rng(11);
  const Graph g = *GenerateSmallWorld(200, 4, 0.1, rng);
  EndpointDistanceCache cache(/*max_entries=*/16, /*max_bytes=*/1 << 16);
  for (int round = 0; round < 300; ++round) {
    const VertexId v = static_cast<VertexId>(rng.NextBounded(40));
    const Hop cap = static_cast<Hop>(2 + rng.NextBounded(4));
    const Direction dir =
        rng.NextBounded(2) == 0 ? Direction::kForward : Direction::kBackward;
    const uint64_t epoch = rng.NextBounded(3);
    cache.Insert(v, dir, cap, epoch, MakeMap(g, v, cap, dir));
    ExpectBytesConsistent(cache);
    if (round % 7 == 0) {
      Get(cache, v, dir, cap, epoch);
      ExpectBytesConsistent(cache);
    }
    if (round % 97 == 0) {
      cache.Invalidate();
      ExpectBytesConsistent(cache);
    }
  }
}

// ---------------------------------------------------------------------------
// Epoch versioning (dynamic graphs, docs/DYNAMIC.md)
// ---------------------------------------------------------------------------

TEST(EndpointCache, StaleEpochMisses) {
  const Graph g = PaperFigure1Graph();
  EndpointDistanceCache cache(8);
  cache.Insert(0, Direction::kForward, 5, /*epoch=*/3,
               MakeMap(g, 0, 5, Direction::kForward));
  // Valid exactly at its build epoch until revalidated.
  EXPECT_TRUE(Get(cache, 0, Direction::kForward, 5, 3).has_value());
  EXPECT_FALSE(Get(cache, 0, Direction::kForward, 5, 2).has_value());
  EXPECT_FALSE(Get(cache, 0, Direction::kForward, 5, 4).has_value());
  EXPECT_EQ(cache.stale_misses(), 2u);
}

TEST(EndpointCache, OlderEpochInsertDoesNotClobberNewer) {
  const Graph g = PaperFigure1Graph();
  EndpointDistanceCache cache(8);
  cache.Insert(0, Direction::kForward, 5, /*epoch=*/4,
               MakeMap(g, 0, 5, Direction::kForward));
  // A batch pinned to an older snapshot re-learns the same key: the newer
  // content must survive.
  cache.Insert(0, Direction::kForward, 5, /*epoch=*/2,
               MakeMap(g, 0, 5, Direction::kForward));
  EXPECT_TRUE(Get(cache, 0, Direction::kForward, 5, 4).has_value());
  EXPECT_FALSE(Get(cache, 0, Direction::kForward, 5, 2).has_value());
  ExpectBytesConsistent(cache);
}

/// A line graph makes cone distances exact: 0 -> 1 -> 2 -> ... -> 9.
Graph LineGraph(VertexId n) {
  GraphBuilder b(n);
  for (VertexId v = 0; v + 1 < n; ++v) b.AddEdge(v, v + 1);
  return *b.Build();
}

/// Cone precision, forward entries: removing edge (7, 8) can only change
/// forward maps of vertices within cap-1 hops of the TAIL 7. On the line,
/// dist(v -> 7) = 7 - v, so entry (v, cap) dies iff 7 - v <= cap - 1.
TEST(EndpointCache, InvalidateUpdatedIsConePreciseForward) {
  const Graph old_g = LineGraph(10);
  std::vector<EdgeUpdate> batch = {EdgeUpdate::Remove(7, 8)};
  UpdateApplyStats applied;
  const Graph new_g = *GraphBuilder::ApplyUpdates(old_g, batch, &applied);

  EndpointDistanceCache cache(64);
  // Forward entries with cap 3 at every vertex: stale iff v in [5, 7]
  // (7 - v <= 2); v = 8, 9 can't reach the tail, v <= 4 is too far.
  for (VertexId v = 0; v < 10; ++v) {
    cache.Insert(v, Direction::kForward, 3, 0,
                 MakeMap(old_g, v, 3, Direction::kForward));
  }
  const auto result = cache.InvalidateUpdated(
      old_g, new_g, applied.added, applied.removed, /*old_epoch=*/0,
      /*new_epoch=*/1);
  EXPECT_EQ(result.invalidated, 3u);
  EXPECT_EQ(result.revalidated, 7u);
  for (VertexId v = 0; v < 10; ++v) {
    const bool stale = v >= 5 && v <= 7;
    EXPECT_EQ(Get(cache, v, Direction::kForward, 3, 1).has_value(), !stale)
        << "vertex " << v;
  }
  // Survivors serve the new epoch with content identical to a fresh BFS on
  // the new graph (the soundness half of the cone argument).
  for (VertexId v = 0; v < 5; ++v) {
    std::optional<VertexDistMap> served =
        Get(cache, v, Direction::kForward, 3, 1);
    ASSERT_TRUE(served.has_value());
    ExpectSameContent(new_g, *served,
                      MakeMap(new_g, v, 3, Direction::kForward));
  }
  ExpectBytesConsistent(cache);
}

/// Cone precision, backward entries: adding edge (2, 8) to the line can
/// only change backward (to-target) maps of vertices within cap-1 hops
/// FROM the HEAD 8 on the new graph.
TEST(EndpointCache, InvalidateUpdatedIsConePreciseBackward) {
  const Graph old_g = LineGraph(10);
  std::vector<EdgeUpdate> batch = {EdgeUpdate::Add(2, 8)};
  UpdateApplyStats applied;
  const Graph new_g = *GraphBuilder::ApplyUpdates(old_g, batch, &applied);

  EndpointDistanceCache cache(64);
  // Backward entries with cap 2: stale iff dist_new(8 -> v) <= 1, i.e.
  // v in {8, 9}.
  for (VertexId v = 0; v < 10; ++v) {
    cache.Insert(v, Direction::kBackward, 2, 0,
                 MakeMap(old_g, v, 2, Direction::kBackward));
  }
  const auto result = cache.InvalidateUpdated(
      old_g, new_g, applied.added, applied.removed, 0, 1);
  EXPECT_EQ(result.invalidated, 2u);
  EXPECT_EQ(result.revalidated, 8u);
  for (VertexId v = 0; v < 10; ++v) {
    const bool stale = v == 8 || v == 9;
    EXPECT_EQ(Get(cache, v, Direction::kBackward, 2, 1).has_value(), !stale)
        << "vertex " << v;
  }
  for (VertexId v = 0; v < 8; ++v) {
    std::optional<VertexDistMap> served =
        Get(cache, v, Direction::kBackward, 2, 1);
    ASSERT_TRUE(served.has_value());
    ExpectSameContent(new_g, *served,
                      MakeMap(new_g, v, 2, Direction::kBackward));
  }
  ExpectBytesConsistent(cache);
}

/// A batch that nets out to nothing (counted no-ops only) revalidates
/// every entry — zero invalidations, full retention.
TEST(EndpointCache, NoopBatchRevalidatesEverything) {
  const Graph g = LineGraph(6);
  EndpointDistanceCache cache(64);
  for (VertexId v = 0; v < 6; ++v) {
    cache.Insert(v, Direction::kForward, 3, 0,
                 MakeMap(g, v, 3, Direction::kForward));
  }
  const auto result = cache.InvalidateUpdated(g, g, /*added=*/{},
                                              /*removed=*/{}, 0, 1);
  EXPECT_EQ(result.invalidated, 0u);
  EXPECT_EQ(result.revalidated, 6u);
  for (VertexId v = 0; v < 6; ++v) {
    EXPECT_TRUE(Get(cache, v, Direction::kForward, 3, 0).has_value());
    EXPECT_TRUE(Get(cache, v, Direction::kForward, 3, 1).has_value());
  }
}

/// Fuzz the precision claim itself: after any update batch, EVERY entry the
/// cone test retains must serve content identical to a fresh BFS on the
/// new graph. (The converse — invalidated entries actually changed — need
/// not hold and is not claimed: the cone is an over-approximation.)
TEST(EndpointCache, InvalidationSoundnessFuzz) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    const VertexId n = 30 + static_cast<VertexId>(rng.NextBounded(30));
    const Graph old_g = *GenerateSmallWorld(n, 3, 0.2, rng);

    EndpointDistanceCache cache(1024);
    for (VertexId v = 0; v < n; ++v) {
      const Hop cap = static_cast<Hop>(1 + rng.NextBounded(5));
      const Direction dir =
          rng.NextBounded(2) == 0 ? Direction::kForward : Direction::kBackward;
      cache.Insert(v, dir, cap, 0, MakeMap(old_g, v, cap, dir));
    }

    std::vector<EdgeUpdate> batch;
    const size_t num_updates = 1 + rng.NextBounded(8);
    for (size_t i = 0; i < num_updates; ++i) {
      const VertexId u = static_cast<VertexId>(rng.NextBounded(n));
      const VertexId w = static_cast<VertexId>(rng.NextBounded(n));
      batch.push_back(rng.NextBounded(2) == 0 ? EdgeUpdate::Add(u, w)
                                          : EdgeUpdate::Remove(u, w));
    }
    UpdateApplyStats applied;
    const Graph new_g = *GraphBuilder::ApplyUpdates(old_g, batch, &applied);

    cache.InvalidateUpdated(old_g, new_g, applied.added, applied.removed, 0,
                            1);
    ExpectBytesConsistent(cache);
    for (VertexId v = 0; v < n; ++v) {
      for (Hop cap = 1; cap <= 5; ++cap) {
        for (Direction dir : {Direction::kForward, Direction::kBackward}) {
          std::optional<VertexDistMap> served = Get(cache, v, dir, cap, 1);
          if (!served.has_value()) continue;
          SCOPED_TRACE("seed " + std::to_string(seed) + " v " +
                       std::to_string(v) + " cap " + std::to_string(cap));
          ExpectSameContent(new_g, *served, MakeMap(new_g, v, cap, dir));
        }
      }
    }
  }
}

/// The integration property behind the whole feature: an index built with
/// a warm cache equals a cold-built index in every observable way.
TEST(EndpointCache, WarmIndexBuildIsContentIdentical) {
  Rng rng(7);
  const Graph g = *GenerateSmallWorld(400, 4, 0.1, rng);
  std::vector<PathQuery> queries = {{0, 50, 5}, {3, 60, 4}, {0, 70, 5},
                                    {12, 50, 3}, {3, 60, 4}};

  BatchContext cold_ctx;  // no cache
  DistanceIndex cold;
  BuildBatchIndex(g, queries, &cold, nullptr);

  EndpointDistanceCache cache(64);
  BatchContext warm_ctx;
  warm_ctx.distance_cache = &cache;
  DistanceIndex warm;
  // First build fills the cache (all misses)...
  BuildBatchIndex(g, queries, &warm, nullptr, nullptr, &warm_ctx);
  EXPECT_EQ(warm.cache_hits(), 0u);
  EXPECT_GT(warm.cache_misses(), 0u);
  // ...second build is served from it.
  BuildBatchIndex(g, queries, &warm, nullptr, nullptr, &warm_ctx);
  EXPECT_GT(warm.cache_hits(), 0u);
  EXPECT_EQ(warm.cache_misses(), 0u);

  ASSERT_EQ(warm.num_queries(), cold.num_queries());
  for (size_t i = 0; i < queries.size(); ++i) {
    ExpectSameContent(g, warm.FromSourceMap(i), cold.FromSourceMap(i));
    ExpectSameContent(g, warm.ToTargetMap(i), cold.ToTargetMap(i));
  }
  EXPECT_EQ(warm.MinDistFromAnySource(), cold.MinDistFromAnySource());
  EXPECT_EQ(warm.MinDistToAnyTarget(), cold.MinDistToAnyTarget());
}

/// Duplicated endpoints with distinct caps are distinct keys, and
/// batch-internal duplicates resolve to one probe per unique key.
TEST(EndpointCache, PerKeyCounting) {
  const Graph g = PaperFigure1Graph();
  EndpointDistanceCache cache(64);
  BatchContext ctx;
  ctx.distance_cache = &cache;
  // Same source vertex 0 under caps 5 and 3 (two keys), plus a clone of
  // the cap-5 query (same key).
  std::vector<PathQuery> queries = {{0, 11, 5}, {0, 13, 3}, {0, 11, 5}};
  DistanceIndex index;
  BuildBatchIndex(g, queries, &index, nullptr, nullptr, &ctx);
  // Forward: 2 unique source keys missed. Backward: targets 11 (cap 5),
  // 13 (cap 3), 11 (cap 5) -> 2 unique keys missed.
  EXPECT_EQ(index.cache_misses(), 4u);
  EXPECT_EQ(index.cache_hits(), 0u);
  DistanceIndex again;
  BuildBatchIndex(g, queries, &again, nullptr, nullptr, &ctx);
  EXPECT_EQ(again.cache_hits(), 4u);
  EXPECT_EQ(again.cache_misses(), 0u);
}

/// The repair contract: InvalidateUpdated exports exactly the erased keys,
/// MRU-first — so a budget-truncated repair pass keeps the hottest keys.
TEST(EndpointCache, InvalidateUpdatedExportsDeadKeysMruFirst) {
  const Graph old_g = LineGraph(10);
  std::vector<EdgeUpdate> batch = {EdgeUpdate::Remove(7, 8)};
  UpdateApplyStats applied;
  const Graph new_g = *GraphBuilder::ApplyUpdates(old_g, batch, &applied);

  EndpointDistanceCache cache(64);
  for (VertexId v = 0; v < 10; ++v) {
    cache.Insert(v, Direction::kForward, 3, 0,
                 MakeMap(old_g, v, 3, Direction::kForward));
  }
  // Touch vertex 5 last so it is the most recently used of the doomed
  // keys (5, 6, 7).
  ASSERT_TRUE(Get(cache, 5, Direction::kForward, 3).has_value());

  std::vector<EndpointDistanceCache::RepairKey> dead;
  cache.InvalidateUpdated(old_g, new_g, applied.added, applied.removed, 0, 1,
                          &dead);
  std::vector<VertexId> order;
  for (const auto& k : dead) {
    EXPECT_EQ(k.dir, Direction::kForward);
    EXPECT_EQ(k.cap, 3);
    order.push_back(k.vertex);
  }
  EXPECT_EQ(order, std::vector<VertexId>({5, 7, 6}));
}

/// The miss-attribution split: a miss on a key the cache once held but
/// invalidated counts as an invalidated miss; a never-seen key does not;
/// re-learning the key clears its tombstone.
TEST(EndpointCache, InvalidatedMissSplit) {
  const Graph old_g = LineGraph(10);
  std::vector<EdgeUpdate> batch = {EdgeUpdate::Remove(7, 8)};
  UpdateApplyStats applied;
  const Graph new_g = *GraphBuilder::ApplyUpdates(old_g, batch, &applied);

  EndpointDistanceCache cache(64);
  cache.Insert(7, Direction::kForward, 3, 0,
               MakeMap(old_g, 7, 3, Direction::kForward));
  cache.InvalidateUpdated(old_g, new_g, applied.added, applied.removed, 0, 1);

  // Erased key -> invalidated miss; never-seen key -> plain miss.
  EXPECT_FALSE(Get(cache, 7, Direction::kForward, 3, 1).has_value());
  EXPECT_EQ(cache.invalidated_misses(), 1u);
  EXPECT_FALSE(Get(cache, 2, Direction::kBackward, 4, 1).has_value());
  EXPECT_EQ(cache.invalidated_misses(), 1u);
  EXPECT_EQ(cache.misses(), 2u);

  // Re-learning (what repair does) clears the tombstone: the next miss on
  // the key — here after a full flush — is a plain never-relearned miss
  // only if invalidated again; a hit counts as a hit.
  cache.Insert(7, Direction::kForward, 3, 1,
               MakeMap(new_g, 7, 3, Direction::kForward));
  EXPECT_TRUE(Get(cache, 7, Direction::kForward, 3, 1).has_value());

  // Full Invalidate() also marks tombstones for the miss split.
  cache.Invalidate();
  EXPECT_FALSE(Get(cache, 7, Direction::kForward, 3, 1).has_value());
  EXPECT_EQ(cache.invalidated_misses(), 2u);
  cache.ResetCounters();
  EXPECT_EQ(cache.invalidated_misses(), 0u);
}

}  // namespace
}  // namespace hcpath
