// ShardedPathService tests: routing + ordered-merge parity against a
// 1-shard reference, and the supervisor's fault machinery replayed exactly
// on a VirtualClock — crash → suspect → down → restart → re-admit,
// bounded retry with backoff, per-query deadlines, dropped-reply
// detection, hedged dispatch winner selection, and graceful degradation
// with the attempt/query conservation identities intact throughout.

#include "service/sharded_service.h"

#include <gtest/gtest.h>

#include <future>
#include <string>
#include <utility>
#include <vector>

#include "core/brute_force.h"
#include "graph/graph_builder.h"
#include "service/admission_status.h"
#include "service/clock.h"
#include "service/fault_injector.h"
#include "test_graphs.h"

namespace hcpath {
namespace {

class RecordingSink : public PathSink {
 public:
  using Event = std::pair<size_t, std::vector<VertexId>>;
  void OnPath(size_t qi, PathView p) override {
    events_.emplace_back(qi, std::vector<VertexId>(p.begin(), p.end()));
  }
  const std::vector<Event>& events() const { return events_; }

 private:
  std::vector<Event> events_;
};

// All timing knobs are binary-exact doubles (power-of-two fractions), so
// sums of intervals compare exactly against the literals the exact-replay
// tests advance to — no floating-point slop anywhere in a timeline.
ShardedServiceOptions BaseOptions(int shards) {
  ShardedServiceOptions opt;
  opt.num_shards = shards;
  opt.batch.num_threads = 1;
  opt.service_time_seconds = 0.015625;       // 1/64
  opt.heartbeat_interval_seconds = 0.0625;   // 1/16
  opt.suspect_after_missed = 2;
  opt.down_after_missed = 4;
  opt.restart_delay_seconds = 0.125;         // 1/8
  opt.restart_duration_seconds = 0.25;       // 1/4
  opt.max_retries = 3;
  opt.retry_backoff_seconds = 0.0625;        // 1/16
  opt.retry_jitter_fraction = 0;  // exact-timeline tests; fuzz adds jitter
  return opt;
}

void CheckConservation(const ShardedServiceStats& s) {
  EXPECT_EQ(s.queries_submitted,
            s.queries_completed + s.queries_failed + s.queries_rejected);
  EXPECT_EQ(s.dispatches, s.attempts_completed + s.attempts_failed +
                              s.attempts_cancelled + s.attempts_dropped +
                              s.attempts_in_flight);
  EXPECT_EQ(s.attempts_in_flight, 0u);
  EXPECT_EQ(s.queries_stalled, 0u);
}

TEST(ShardedServiceOptions, ValidateRejectsBadConfigs) {
  ShardedServiceOptions opt;
  EXPECT_TRUE(opt.Validate().ok());
  opt.num_shards = 0;
  EXPECT_EQ(opt.Validate().code(), StatusCode::kInvalidArgument);
  opt = ShardedServiceOptions();
  opt.heartbeat_interval_seconds = 0;
  EXPECT_EQ(opt.Validate().code(), StatusCode::kInvalidArgument);
  opt = ShardedServiceOptions();
  opt.down_after_missed = 1;
  opt.suspect_after_missed = 3;
  EXPECT_EQ(opt.Validate().code(), StatusCode::kInvalidArgument);
  opt = ShardedServiceOptions();
  opt.enable_hedging = true;
  opt.hedge_quantile = 1.5;
  EXPECT_EQ(opt.Validate().code(), StatusCode::kInvalidArgument);
  opt = ShardedServiceOptions();
  opt.retry_backoff_multiplier = 0.5;
  EXPECT_EQ(opt.Validate().code(), StatusCode::kInvalidArgument);
  opt = ShardedServiceOptions();
  opt.batch.gamma = 2.0;  // propagates BatchOptions validation
  EXPECT_EQ(opt.Validate().code(), StatusCode::kInvalidArgument);

  const Graph g = PaperFigure1Graph();
  opt = ShardedServiceOptions();
  opt.num_shards = -1;
  VirtualClock vc;
  ShardedPathService svc(&g, opt, &vc);
  EXPECT_EQ(svc.init_status().code(), StatusCode::kInvalidArgument);
}

// The headline parity property: an N-shard service under either routing
// policy produces, per query, byte-identical results to a 1-shard
// reference, and its sink stream is the same submission-ordered stream.
TEST(ShardedService, ShardCountAndRoutingParity) {
  const Graph g = PaperFigure1Graph();
  const std::vector<PathQuery> queries = PaperFigure1Queries();

  VirtualClock ref_clock;
  RecordingSink ref_sink;
  ShardedPathService reference(&g, BaseOptions(1), &ref_clock);
  ASSERT_TRUE(reference.init_status().ok());
  auto ref_futures = reference.SubmitBatch("t", queries, &ref_sink);
  reference.RunToCompletion(&ref_clock);
  std::vector<QueryResult> ref_results;
  for (auto& f : ref_futures) ref_results.push_back(f.get());

  for (int shards : {2, 4}) {
    for (RoutingPolicy policy :
         {RoutingPolicy::kHash, RoutingPolicy::kRoundRobin}) {
      VirtualClock vc;
      RecordingSink sink;
      ShardedServiceOptions opt = BaseOptions(shards);
      opt.routing = policy;
      ShardedPathService svc(&g, opt, &vc);
      ASSERT_TRUE(svc.init_status().ok());
      auto futures = svc.SubmitBatch("t", queries, &sink);
      svc.RunToCompletion(&vc);
      ASSERT_EQ(futures.size(), ref_results.size());
      for (size_t i = 0; i < futures.size(); ++i) {
        QueryResult r = futures[i].get();
        ASSERT_TRUE(r.status.ok()) << r.status;
        EXPECT_EQ(r.path_count, ref_results[i].path_count)
            << "shards=" << shards << " query " << i;
      }
      // Byte-identical stream: same (query_index, path) sequence.
      EXPECT_EQ(sink.events(), ref_sink.events())
          << "shards=" << shards
          << " routing=" << RoutingPolicyName(policy);
      CheckConservation(svc.GetStats());
    }
  }

  // And the results themselves match brute force. A sinkless run
  // materializes into QueryResult::paths (the sinked runs above streamed
  // theirs, so their results carry counts only).
  VirtualClock mat_clock;
  ShardedPathService materializing(&g, BaseOptions(4), &mat_clock);
  auto mat_futures = materializing.SubmitBatch("t", queries, nullptr);
  materializing.RunToCompletion(&mat_clock);
  for (size_t i = 0; i < queries.size(); ++i) {
    auto oracle = BruteForcePaths(g, queries[i]);
    ASSERT_TRUE(oracle.ok());
    QueryResult r = mat_futures[i].get();
    EXPECT_EQ(ref_results[i].path_count, oracle->size());
    EXPECT_EQ(r.paths.ToSortedVectors(), oracle->ToSortedVectors());
  }
}

// An invalid query fails its own future with InvalidArgument (permanent)
// and occupies a zero-path slot in the merge; siblings are untouched.
TEST(ShardedService, InvalidQueryRejectedIndividually) {
  const Graph g = PaperFigure1Graph();
  VirtualClock vc;
  ShardedPathService svc(&g, BaseOptions(2), &vc);
  RecordingSink sink;
  std::vector<PathQuery> queries = {{0, 11, 5}, {999, 3, 4}, {2, 13, 5}};
  auto futures = svc.SubmitBatch("t", queries, &sink);
  svc.RunToCompletion(&vc);

  EXPECT_TRUE(futures[0].get().status.ok());
  QueryResult bad = futures[1].get();
  EXPECT_EQ(bad.status.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(bad.status.retryable());
  EXPECT_TRUE(futures[2].get().status.ok());
  // The sink saw only the two valid queries, still in submission order.
  for (size_t i = 1; i < sink.events().size(); ++i) {
    EXPECT_LE(sink.events()[i - 1].first, sink.events()[i].first);
  }
  ShardedServiceStats s = svc.GetStats();
  EXPECT_EQ(s.queries_rejected, 1u);
  CheckConservation(s);
}

// The acceptance-criteria replay: a scripted crash on shard 0's first
// dispatch walks the exact healthy → suspect → down → restarting →
// healthy schedule on the virtual timeline, fails over the stranded
// attempt to shard 1, and re-admits dispatches after restart.
TEST(ShardedService, CrashSuspectDownRestartReadmitExactSchedule) {
  const Graph g = PaperFigure1Graph();
  VirtualClock vc;
  FaultInjector fi({FaultRule{/*shard=*/0, /*at_dispatch=*/0, /*count=*/1,
                              FaultKind::kCrash, 0.0, 1.0}});
  ShardedServiceOptions opt = BaseOptions(2);
  opt.routing = RoutingPolicy::kRoundRobin;  // query 0 -> shard 0
  ShardedPathService svc(&g, opt, &vc, &fi);
  auto futures = svc.SubmitBatch("t", {{0, 11, 5}}, nullptr);

  // t=0: dispatch crashed shard 0. Heartbeats every 1/16 s; suspect at 2
  // missed, down at 4, restart begins 1/8 s after down and takes 1/4 s.
  EXPECT_EQ(svc.shard_health(0), ShardHealth::kHealthy);
  vc.AdvanceTo(0.0625);  // missed 1
  svc.Step();
  EXPECT_EQ(svc.shard_health(0), ShardHealth::kHealthy);
  vc.AdvanceTo(0.125);  // missed 2 -> suspect
  svc.Step();
  EXPECT_EQ(svc.shard_health(0), ShardHealth::kSuspect);
  vc.AdvanceTo(0.1875);  // missed 3
  svc.Step();
  EXPECT_EQ(svc.shard_health(0), ShardHealth::kSuspect);
  vc.AdvanceTo(0.25);  // missed 4 -> down; failover + retry scheduled
  svc.Step();
  EXPECT_EQ(svc.shard_health(0), ShardHealth::kDown);
  // Retry lands on shard 1 at 0.3125 (backoff 1/16, no jitter) and
  // completes one service time later at 0.328125.
  vc.AdvanceTo(0.328125);
  svc.Step();
  ASSERT_EQ(futures[0].wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  QueryResult r = futures[0].get();
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_EQ(r.path_count, 3u);  // q0 of Fig 1
  vc.AdvanceTo(0.375);  // down + 1/8 -> restart begins
  svc.Step();
  EXPECT_EQ(svc.shard_health(0), ShardHealth::kRestarting);
  vc.AdvanceTo(0.625);  // + 1/4 -> serving again
  svc.Step();
  EXPECT_EQ(svc.shard_health(0), ShardHealth::kHealthy);
  svc.RunToCompletion(&vc);

  ShardedServiceStats s = svc.GetStats();
  EXPECT_EQ(s.shards[0].crashes, 1u);
  EXPECT_EQ(s.shards[0].restarts, 1u);
  EXPECT_EQ(s.failovers, 1u);
  EXPECT_EQ(s.retries, 1u);
  EXPECT_EQ(s.queries_completed, 1u);
  CheckConservation(s);

  // Re-admission: the restarted shard serves again. Round-robin has
  // advanced once (the crashed dispatch), so two queries guarantee one
  // lands back on shard 0.
  auto f2 = svc.SubmitBatch("t", {{0, 11, 5}, {2, 13, 5}}, nullptr);
  svc.RunToCompletion(&vc);
  EXPECT_TRUE(f2[0].get().status.ok());
  EXPECT_TRUE(f2[1].get().status.ok());
  EXPECT_GE(svc.GetStats().shards[0].completions, 1u);
}

// fail-N-then-succeed: bounded retry with backoff absorbs transient
// dispatch failures without surfacing them to the caller.
TEST(ShardedService, RetryAbsorbsFailNThenSucceed) {
  const Graph g = PaperFigure1Graph();
  VirtualClock vc;
  FaultInjector fi({FaultRule{0, 0, 2, FaultKind::kFailN, 0.0, 1.0},
                    FaultRule{1, 0, 2, FaultKind::kFailN, 0.0, 1.0}});
  ShardedServiceOptions opt = BaseOptions(2);
  opt.routing = RoutingPolicy::kRoundRobin;
  opt.max_retries = 4;
  ShardedPathService svc(&g, opt, &vc, &fi);
  auto futures = svc.SubmitBatch("t", {{0, 11, 5}}, nullptr);
  svc.RunToCompletion(&vc);
  QueryResult r = futures[0].get();
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_EQ(r.path_count, 3u);
  ShardedServiceStats s = svc.GetStats();
  EXPECT_GE(s.retries, 2u);
  EXPECT_TRUE(fi.fired(FaultKind::kFailN) >= 2);
  CheckConservation(s);
}

// Retry budget exhausted: the query fails with the canonical retryable
// kUnavailable and the batch still completes — graceful degradation, not
// a stalled merge.
TEST(ShardedService, DegradesWithPerQueryStatusPastRetryBudget) {
  const Graph g = PaperFigure1Graph();
  VirtualClock vc;
  FaultInjector fi({FaultRule{0, 0, 100, FaultKind::kFailN, 0.0, 1.0},
                    FaultRule{1, 0, 100, FaultKind::kFailN, 0.0, 1.0}});
  ShardedServiceOptions opt = BaseOptions(2);
  opt.max_retries = 2;
  ShardedPathService svc(&g, opt, &vc, &fi);
  RecordingSink sink;
  auto futures = svc.SubmitBatch("t", PaperFigure1Queries(), &sink);
  svc.RunToCompletion(&vc);
  for (auto& f : futures) {
    QueryResult r = f.get();
    EXPECT_TRUE(IsShardUnavailable(r.status)) << r.status;
    EXPECT_TRUE(r.status.retryable());
  }
  EXPECT_TRUE(sink.events().empty());
  ShardedServiceStats s = svc.GetStats();
  EXPECT_EQ(s.queries_failed, 5u);
  CheckConservation(s);
}

// Per-query deadline: expiry is terminal kDeadlineExceeded and cancels
// the outstanding attempt; the merge completes.
TEST(ShardedService, DeadlineExpiryIsTerminal) {
  const Graph g = PaperFigure1Graph();
  VirtualClock vc;
  // Straggler: every shard-0 dispatch is 100x slow (1s >> deadline).
  FaultInjector fi({FaultRule{0, 0, 100, FaultKind::kSlow, 0.0, 100.0}});
  ShardedServiceOptions opt = BaseOptions(1);
  opt.deadline_seconds = 0.25;
  opt.max_retries = 0;
  ShardedPathService svc(&g, opt, &vc, &fi);
  auto futures = svc.SubmitBatch("t", {{0, 11, 5}}, nullptr);
  svc.RunToCompletion(&vc);
  QueryResult r = futures[0].get();
  EXPECT_TRUE(IsQueryDeadline(r.status)) << r.status;
  EXPECT_TRUE(r.status.retryable());  // caller may re-submit afresh
  ShardedServiceStats s = svc.GetStats();
  EXPECT_EQ(s.deadline_expired, 1u);
  CheckConservation(s);
}

// drop-reply: the shard does the work, the reply vanishes; the per-attempt
// timeout is the detection path and the retry re-executes elsewhere.
TEST(ShardedService, DroppedReplyDetectedByAttemptTimeout) {
  const Graph g = PaperFigure1Graph();
  VirtualClock vc;
  FaultInjector fi({FaultRule{0, 0, 1, FaultKind::kDropReply, 0.0, 1.0}});
  ShardedServiceOptions opt = BaseOptions(2);
  opt.routing = RoutingPolicy::kRoundRobin;
  opt.attempt_timeout_seconds = 0.125;
  ShardedPathService svc(&g, opt, &vc, &fi);
  auto futures = svc.SubmitBatch("t", {{0, 11, 5}}, nullptr);
  svc.RunToCompletion(&vc);
  QueryResult r = futures[0].get();
  ASSERT_TRUE(r.status.ok()) << r.status;
  EXPECT_EQ(r.path_count, 3u);
  ShardedServiceStats s = svc.GetStats();
  EXPECT_EQ(s.attempts_dropped, 1u);
  EXPECT_GE(s.attempt_timeouts, 1u);
  EXPECT_GE(s.retries, 1u);
  CheckConservation(s);
}

// Hedged dispatch: a scripted straggler primary is overtaken by the hedge
// on the sibling; first reply wins, the loser is cancelled, and the
// result is byte-identical either way (replicated shards). Deterministic:
// two identical runs produce identical stats and bytes.
TEST(ShardedService, HedgedDispatchFirstReplyWins) {
  const Graph g = PaperFigure1Graph();
  auto run = [&](ShardedServiceStats* stats_out) {
    VirtualClock vc;
    FaultInjector fi({FaultRule{0, 0, 1, FaultKind::kSlow, 0.0, 50.0}});
    ShardedServiceOptions opt = BaseOptions(2);
    opt.routing = RoutingPolicy::kRoundRobin;  // query -> shard 0
    opt.enable_hedging = true;
    opt.hedge_after_seconds = 0.03125;  // 1/32
    opt.hedge_min_samples = 1000;  // stay on the cold-start threshold
    ShardedPathService svc(&g, opt, &vc, &fi);
    auto futures = svc.SubmitBatch("t", {{0, 11, 5}}, nullptr);
    svc.RunToCompletion(&vc);
    QueryResult r = futures[0].get();
    *stats_out = svc.GetStats();
    return r;
  };
  ShardedServiceStats s1, s2;
  QueryResult r1 = run(&s1);
  QueryResult r2 = run(&s2);
  ASSERT_TRUE(r1.status.ok()) << r1.status;
  EXPECT_EQ(r1.path_count, 3u);
  EXPECT_EQ(r1.paths.ToSortedVectors(), r2.paths.ToSortedVectors());
  EXPECT_EQ(s1.hedges, 1u);
  EXPECT_EQ(s1.hedged_wins, 1u);  // hedge (fast sibling) answered first
  EXPECT_EQ(s1.attempts_cancelled, 1u);  // the straggler's reply ignored
  EXPECT_EQ(s1.hedges, s2.hedges);
  EXPECT_EQ(s1.hedged_wins, s2.hedged_wins);
  EXPECT_EQ(s1.dispatches, s2.dispatches);
  CheckConservation(s1);
  // The hedge must cut latency far below the straggler's 0.78125s
  // service time (50 * 1/64).
  EXPECT_LT(r1.batch_seconds, 0.1);
}

// Hang: a hung shard stops heartbeating, degrades to suspect, and heals
// back to healthy once the stall clears — without a restart.
TEST(ShardedService, HangSuppressesHeartbeatsThenHeals) {
  const Graph g = PaperFigure1Graph();
  VirtualClock vc;
  FaultInjector fi({FaultRule{0, 0, 1, FaultKind::kHang, 0.1875, 1.0}});
  ShardedServiceOptions opt = BaseOptions(1);
  ShardedPathService svc(&g, opt, &vc, &fi);
  auto futures = svc.SubmitBatch("t", {{0, 11, 5}}, nullptr);
  vc.AdvanceTo(0.125);  // two missed beats inside the 0.1875s hang
  svc.Step();
  EXPECT_EQ(svc.shard_health(0), ShardHealth::kSuspect);
  svc.RunToCompletion(&vc);
  EXPECT_TRUE(futures[0].get().status.ok());
  EXPECT_EQ(svc.shard_health(0), ShardHealth::kHealthy);
  EXPECT_EQ(svc.GetStats().shards[0].restarts, 0u);
  CheckConservation(svc.GetStats());
}

// Store-backed shards: a restart re-pins Current(), so a shard that died
// before an update batch comes back on the new epoch while its sibling
// keeps serving the old pinned snapshot (pin-aware GC keeps it valid).
TEST(ShardedService, RestartRepinsCurrentSnapshot) {
  GraphBuilder b(16);
  const Graph seed = PaperFigure1Graph();
  GraphStore store(seed);
  VirtualClock vc;
  FaultInjector fi({FaultRule{0, 0, 1, FaultKind::kCrash, 0.0, 1.0}});
  ShardedServiceOptions opt = BaseOptions(2);
  opt.routing = RoutingPolicy::kRoundRobin;
  ShardedPathService svc(&store, opt, &vc, &fi);
  EXPECT_EQ(svc.shard_epoch(0), 0u);
  EXPECT_EQ(svc.shard_epoch(1), 0u);

  auto futures = svc.SubmitBatch("t", {{0, 11, 5}}, nullptr);
  // While shard 0 is dead, the graph moves on.
  const std::vector<EdgeUpdate> updates = {EdgeUpdate::Add(0, 2)};
  ASSERT_TRUE(store.ApplyUpdates(updates).ok());
  svc.RunToCompletion(&vc);
  EXPECT_TRUE(futures[0].get().status.ok());
  EXPECT_EQ(svc.shard_epoch(0), 1u);  // restarted onto the new epoch
  EXPECT_EQ(svc.shard_epoch(1), 0u);  // old pin still draining
  CheckConservation(svc.GetStats());
}

// Multi-batch interleaving: batches drain independently, each in its own
// submission order, under round-robin routing with faults.
TEST(ShardedService, IndependentBatchesDrainIndependently) {
  const Graph g = PaperFigure1Graph();
  VirtualClock vc;
  FaultInjector fi({FaultRule{1, 0, 1, FaultKind::kFailN, 0.0, 1.0}});
  ShardedServiceOptions opt = BaseOptions(4);
  opt.routing = RoutingPolicy::kRoundRobin;
  ShardedPathService svc(&g, opt, &vc, &fi);
  RecordingSink sink_a, sink_b;
  auto fa = svc.SubmitBatch("a", PaperFigure1Queries(), &sink_a);
  auto fb = svc.SubmitBatch("b", PaperFigure1Queries(), &sink_b);
  svc.RunToCompletion(&vc);
  for (auto& f : fa) EXPECT_TRUE(f.get().status.ok());
  for (auto& f : fb) EXPECT_TRUE(f.get().status.ok());
  EXPECT_EQ(sink_a.events(), sink_b.events());  // same queries, same bytes
  for (size_t i = 1; i < sink_a.events().size(); ++i) {
    EXPECT_LE(sink_a.events()[i - 1].first, sink_a.events()[i].first);
  }
  CheckConservation(svc.GetStats());
}

}  // namespace
}  // namespace hcpath
