// Parameterized sweep over the clustering threshold γ: results must be
// invariant, cluster counts monotone, and sharing confined to clusters.

#include <gtest/gtest.h>

#include "hcpath/hcpath.h"
#include "test_graphs.h"

namespace hcpath {
namespace {

class GammaSweep : public ::testing::TestWithParam<double> {};

TEST_P(GammaSweep, ResultsInvariantUnderGamma) {
  const double gamma = GetParam();
  Graph g = PaperFigure1Graph();
  auto queries = PaperFigure1Queries();
  BatchPathEnumerator enumerator(g);
  BatchOptions opt;
  opt.gamma = gamma;
  opt.algorithm = Algorithm::kBatchEnum;
  auto result = enumerator.Run(queries, opt);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->path_counts, (std::vector<uint64_t>{3, 3, 1, 2, 2}));
  EXPECT_GE(result->stats.num_clusters, 1u);
  EXPECT_LE(result->stats.num_clusters, queries.size());
}

INSTANTIATE_TEST_SUITE_P(Gammas, GammaSweep,
                         ::testing::Values(0.05, 0.1, 0.2, 0.3, 0.4, 0.5,
                                           0.6, 0.7, 0.8, 0.9, 1.0));

TEST(GammaMonotonicity, ClusterCountGrowsWithGamma) {
  Rng rng(3);
  Graph g = *GenerateSmallWorld(500, 4, 0.05, rng);
  // Two hotspots of similar queries plus noise.
  std::vector<PathQuery> queries;
  for (int i = 0; i < 5; ++i) {
    queries.push_back({10, static_cast<VertexId>(24 + i), 5});
    queries.push_back({300, static_cast<VertexId>(314 + i), 5});
  }
  BatchPathEnumerator enumerator(g);
  uint64_t prev = 0;
  for (double gamma : {0.1, 0.5, 0.95}) {
    BatchOptions opt;
    opt.gamma = gamma;
    auto result = enumerator.Run(queries, opt);
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result->stats.num_clusters, prev);
    prev = result->stats.num_clusters;
  }
}

TEST(GammaExtremes, GammaOneDisablesSharingAcrossDistinctQueries) {
  Graph g = PaperFigure1Graph();
  // Distinct queries never reach δ > 1, so every cluster is a singleton
  // and no dominating nodes can be detected.
  std::vector<PathQuery> queries = {{0, 11, 5}, {2, 13, 5}};
  BatchPathEnumerator enumerator(g);
  BatchOptions opt;
  opt.gamma = 1.0;
  opt.algorithm = Algorithm::kBatchEnum;
  auto result = enumerator.Run(queries, opt);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.dominating_nodes, 0u);
  EXPECT_EQ(result->stats.num_clusters, 2u);
}

TEST(GammaExtremes, PaperExampleDetectsSharingAtPaperGamma) {
  // Example 4.2: at γ = 0.8 the cluster {q0, q1, q2} yields dominating
  // queries q_{v1,2} and q_{v4,2} on G.
  Graph g = PaperFigure1Graph();
  auto queries = PaperFigure1Queries();
  BatchPathEnumerator enumerator(g);
  BatchOptions opt;
  opt.gamma = 0.8;
  opt.algorithm = Algorithm::kBatchEnum;
  auto result = enumerator.Run(queries, opt);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.num_clusters, 2u);
  EXPECT_GE(result->stats.dominating_nodes, 2u);
  EXPECT_GT(result->stats.shortcut_splices, 0u);
}

}  // namespace
}  // namespace hcpath
