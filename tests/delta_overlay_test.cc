// DeltaOverlay representation invariants: patched-list iteration is
// structurally identical to a from-scratch rebuild (per vertex, both
// directions), chains flatten over one base, and the GraphStore compaction
// policy folds and retains snapshots as documented (docs/DYNAMIC.md).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "graph/delta_overlay.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "graph/graph_store.h"
#include "util/rng.h"

namespace hcpath {
namespace {

using Edge = std::pair<VertexId, VertexId>;

Graph LineGraph(VertexId n) {
  GraphBuilder b(n);
  for (VertexId v = 0; v + 1 < n; ++v) b.AddEdge(v, v + 1);
  return *b.Build();
}

/// Full CSR content equality (ids, counts, adjacency in stored order).
void ExpectSameGraph(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.NumVertices(), b.NumVertices());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  for (VertexId v = 0; v < a.NumVertices(); ++v) {
    const auto oa = a.OutNeighbors(v);
    const auto ob = b.OutNeighbors(v);
    ASSERT_EQ(std::vector<VertexId>(oa.begin(), oa.end()),
              std::vector<VertexId>(ob.begin(), ob.end()))
        << "out-adjacency of " << v;
    const auto ia = a.InNeighbors(v);
    const auto ib = b.InNeighbors(v);
    ASSERT_EQ(std::vector<VertexId>(ia.begin(), ia.end()),
              std::vector<VertexId>(ib.begin(), ib.end()))
        << "in-adjacency of " << v;
  }
}

/// The out/in views must describe the same edge set: w in out(v) iff
/// v in in(w), and both spans sorted (the invariant every enumeration
/// kernel and the overlay's lockstep merge rely on).
void ExpectAdjacencySymmetricAndSorted(const Graph& g) {
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    const auto out = g.OutNeighbors(v);
    ASSERT_TRUE(std::is_sorted(out.begin(), out.end())) << "out of " << v;
    for (VertexId w : out) {
      const auto in = g.InNeighbors(w);
      ASSERT_TRUE(std::binary_search(in.begin(), in.end(), v))
          << v << "->" << w << " missing from in-adjacency";
    }
    const auto in = g.InNeighbors(v);
    ASSERT_TRUE(std::is_sorted(in.begin(), in.end())) << "in of " << v;
    for (VertexId u : in) {
      const auto out_u = g.OutNeighbors(u);
      ASSERT_TRUE(std::binary_search(out_u.begin(), out_u.end(), v))
          << u << "->" << v << " missing from out-adjacency";
    }
  }
}

/// Classifies `batch` against the prior view (base + prior overlay) and
/// extends the chain — exactly the GraphStore extend path, minus the store.
std::shared_ptr<const DeltaOverlay> ExtendWith(
    const std::shared_ptr<const Graph>& flat,
    const std::shared_ptr<const DeltaOverlay>& prior,
    const std::vector<EdgeUpdate>& batch) {
  const Graph view = prior != nullptr ? Graph(prior) : Graph();
  const Graph& prior_view = prior != nullptr ? view : *flat;
  UpdateApplyStats s;
  EXPECT_TRUE(GraphBuilder::ClassifyUpdates(prior_view, batch, &s).ok());
  return DeltaOverlay::Extend(flat, prior.get(), s.added, s.removed);
}

TEST(DeltaOverlay, AddAfterRemoveAcrossBatches) {
  auto flat = std::make_shared<const Graph>(LineGraph(5));  // 0->1->2->3->4
  auto o1 = ExtendWith(flat, nullptr, {EdgeUpdate::Remove(1, 2)});
  EXPECT_FALSE(Graph(o1).HasEdge(1, 2));

  // Re-adding in a later batch must resurface the edge even though the
  // chain's cumulative view nets to "no change" for (1,2).
  auto o2 = ExtendWith(flat, o1, {EdgeUpdate::Add(1, 2)});
  const Graph g(o2);
  EXPECT_TRUE(g.HasEdge(1, 2));
  ExpectSameGraph(g, *flat);
  EXPECT_EQ(o2->depth(), 2u);
  EXPECT_EQ(o2->delta_edges(), 2u);  // both touches count toward compaction
  // Vertex 1 stays patched (its list was materialized twice), so the edge
  // is served from the patch table, not the base fallthrough.
  EXPECT_GT(o2->patched_vertices(), 0u);
}

TEST(DeltaOverlay, RemoveOfAddedEdge) {
  auto flat = std::make_shared<const Graph>(LineGraph(4));
  auto o1 = ExtendWith(flat, nullptr, {EdgeUpdate::Add(0, 3)});
  EXPECT_TRUE(Graph(o1).HasEdge(0, 3));
  EXPECT_EQ(o1->num_edges(), flat->NumEdges() + 1);

  auto o2 = ExtendWith(flat, o1, {EdgeUpdate::Remove(0, 3)});
  const Graph g(o2);
  EXPECT_FALSE(g.HasEdge(0, 3));
  EXPECT_EQ(g.NumEdges(), flat->NumEdges());
  ExpectSameGraph(g, *flat);
}

TEST(DeltaOverlay, DuplicateUpdatesNetWithinBatch) {
  auto flat = std::make_shared<const Graph>(LineGraph(4));
  // Last-wins collapse happens in classification, so the overlay sees an
  // empty effective delta — but the store still extends (epochs identify
  // admission points), so verify a no-op extend is a faithful identity.
  auto o1 = ExtendWith(flat, nullptr,
                       {EdgeUpdate::Add(0, 2), EdgeUpdate::Remove(0, 2),
                        EdgeUpdate::Remove(1, 2), EdgeUpdate::Add(1, 2)});
  const Graph g(o1);
  ExpectSameGraph(g, *flat);
  EXPECT_EQ(o1->delta_edges(), 0u);
  EXPECT_EQ(o1->patched_vertices(), 0u);
}

TEST(DeltaOverlay, EmptiedListStaysPatched) {
  auto flat = std::make_shared<const Graph>(LineGraph(3));  // 0->1->2
  auto o1 = ExtendWith(flat, nullptr, {EdgeUpdate::Remove(0, 1)});
  const Graph g(o1);
  // Vertex 0's out-list emptied: the patch table must serve the empty
  // span rather than falling through to the base's 0->1.
  EXPECT_TRUE(g.OutNeighbors(0).empty());
  EXPECT_TRUE(g.InNeighbors(1).empty());
  EXPECT_EQ(g.NumEdges(), 1u);
}

TEST(DeltaOverlay, GrowsVertexSpace) {
  auto flat = std::make_shared<const Graph>(LineGraph(3));
  auto o1 = ExtendWith(flat, nullptr, {EdgeUpdate::Add(2, 7)});
  const Graph g(o1);
  EXPECT_EQ(g.NumVertices(), 8u);
  EXPECT_TRUE(g.HasEdge(2, 7));
  // Grown ids beyond the base CSR read as isolated in both directions.
  EXPECT_TRUE(g.OutNeighbors(5).empty());
  EXPECT_TRUE(g.InNeighbors(5).empty());
  const auto in7 = g.InNeighbors(7);
  EXPECT_EQ(std::vector<VertexId>(in7.begin(), in7.end()),
            std::vector<VertexId>({2}));
}

/// The structural-identity contract, chained: after any sequence of
/// batches the overlay view is indistinguishable from a from-scratch
/// Build over the surviving edge set — per-vertex spans, both directions.
TEST(DeltaOverlay, ChainMatchesFromScratchBuildFuzz) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    const VertexId n = 8 + static_cast<VertexId>(rng.NextBounded(30));
    auto flat =
        std::make_shared<const Graph>(*GenerateErdosRenyi(n, 3 * n, rng));

    std::vector<Edge> shadow = flat->Edges();
    std::shared_ptr<const DeltaOverlay> chain;
    const size_t num_batches = 1 + rng.NextBounded(4);
    for (size_t b = 0; b < num_batches; ++b) {
      std::vector<EdgeUpdate> batch;
      const size_t num_updates = 1 + rng.NextBounded(12);
      for (size_t i = 0; i < num_updates; ++i) {
        const VertexId u = static_cast<VertexId>(rng.NextBounded(n + 2));
        const VertexId v = static_cast<VertexId>(rng.NextBounded(n + 2));
        batch.push_back(rng.NextBounded(2) == 0 ? EdgeUpdate::Add(u, v)
                                                : EdgeUpdate::Remove(u, v));
      }
      chain = ExtendWith(flat, chain, batch);
      for (const EdgeUpdate& u : batch) {
        const Edge e{u.u, u.v};
        shadow.erase(std::remove(shadow.begin(), shadow.end(), e),
                     shadow.end());
        if (u.op == EdgeUpdate::Op::kAddEdge && u.u != u.v) {
          shadow.push_back(e);
        }
      }
    }

    const Graph g(chain);
    GraphBuilder b(g.NumVertices());
    for (const Edge& e : shadow) b.AddEdge(e.first, e.second);
    const Graph rebuilt = *b.Build();
    SCOPED_TRACE("seed " + std::to_string(seed));
    ExpectSameGraph(g, rebuilt);
    ExpectAdjacencySymmetricAndSorted(g);
    ASSERT_EQ(g.Edges(), rebuilt.Edges());
    EXPECT_EQ(chain->depth(), num_batches);
  }
}

TEST(GraphStoreOverlay, ExtendThenCompactOnThreshold) {
  // LineGraph(5) has 4 edges; threshold 0.25 allows a cumulative delta of
  // 1 edge, so the first one-edge batch extends and the second compacts.
  GraphStore store(LineGraph(5),
                   GraphStoreOptions{.compaction_threshold = 0.25});
  auto r1 = store.ApplyUpdates(std::vector<EdgeUpdate>{EdgeUpdate::Add(0, 2)});
  ASSERT_TRUE(r1.status().ok());
  EXPECT_TRUE(r1->used_overlay);
  EXPECT_NE(r1->snapshot->graph.overlay(), nullptr);
  EXPECT_TRUE(r1->snapshot->graph.HasEdge(0, 2));

  auto r2 = store.ApplyUpdates(std::vector<EdgeUpdate>{EdgeUpdate::Add(0, 3)});
  ASSERT_TRUE(r2.status().ok());
  EXPECT_FALSE(r2->used_overlay);
  EXPECT_EQ(r2->snapshot->graph.overlay(), nullptr);  // folded to flat CSR
  EXPECT_TRUE(r2->snapshot->graph.HasEdge(0, 2));
  EXPECT_TRUE(r2->snapshot->graph.HasEdge(0, 3));

  GraphStoreStats stats = store.GetStats();
  EXPECT_EQ(stats.overlay_extends, 1u);
  EXPECT_EQ(stats.full_rebuilds, 1u);
  EXPECT_EQ(stats.compactions, 1u);
  EXPECT_EQ(stats.overlay_depth, 0u);
  EXPECT_EQ(stats.overlay_delta_edges, 0u);

  // The compacted snapshot equals an always-rebuild shadow store fed the
  // same batches.
  GraphStore shadow(LineGraph(5),
                    GraphStoreOptions{.compaction_threshold = 0});
  ASSERT_TRUE(shadow
                  .ApplyUpdates(std::vector<EdgeUpdate>{EdgeUpdate::Add(0, 2)})
                  .status()
                  .ok());
  ASSERT_TRUE(shadow
                  .ApplyUpdates(std::vector<EdgeUpdate>{EdgeUpdate::Add(0, 3)})
                  .status()
                  .ok());
  ExpectSameGraph(store.Current()->graph, shadow.Current()->graph);
}

TEST(GraphStoreOverlay, ChainKeepsFlatBaseAliveUntilCollected) {
  // Threshold high enough that every batch extends; nobody pins anything.
  GraphStore store(LineGraph(5),
                   GraphStoreOptions{.compaction_threshold = 100.0});
  for (int i = 0; i < 3; ++i) {
    auto r = store.ApplyUpdates(std::vector<EdgeUpdate>{
        EdgeUpdate::Add(0, static_cast<VertexId>(2 + i))});
    ASSERT_TRUE(r.status().ok());
    EXPECT_TRUE(r->used_overlay);
  }
  GraphStoreStats stats = store.GetStats();
  EXPECT_EQ(stats.overlay_extends, 3u);
  EXPECT_EQ(stats.overlay_depth, 3u);
  EXPECT_EQ(stats.overlay_delta_edges, 3u);
  EXPECT_EQ(stats.snapshots_retired, 3u);
  // Intermediate overlay snapshots (epochs 1, 2) collect promptly — chains
  // are flattened, so nothing references them — but the epoch-0 flat base
  // stays alive: the current overlay holds it.
  EXPECT_EQ(stats.snapshots_collected, 2u);
  EXPECT_EQ(stats.snapshots_live, 2u);  // current chain head + flat base
  // Flattened chain: the head patches the flat seed CSR directly.
  const DeltaOverlay* head = store.Current()->graph.overlay();
  ASSERT_NE(head, nullptr);
  EXPECT_EQ(head->base().overlay(), nullptr);
  EXPECT_EQ(head->base().NumEdges(), 4u);  // the untouched seed
}

TEST(GraphStoreOverlay, ThresholdZeroDisablesOverlay) {
  GraphStore store(LineGraph(5),
                   GraphStoreOptions{.compaction_threshold = 0});
  auto r = store.ApplyUpdates(std::vector<EdgeUpdate>{EdgeUpdate::Add(0, 2)});
  ASSERT_TRUE(r.status().ok());
  EXPECT_FALSE(r->used_overlay);
  EXPECT_EQ(r->snapshot->graph.overlay(), nullptr);
  GraphStoreStats stats = store.GetStats();
  EXPECT_EQ(stats.overlay_extends, 0u);
  EXPECT_EQ(stats.full_rebuilds, 1u);
  EXPECT_EQ(stats.compactions, 0u);  // nothing to fold in always-rebuild
}

}  // namespace
}  // namespace hcpath
