// Kernel-equivalence suite for the epoch-stamped membership rewrite
// (docs/PERF.md): the stamped kernels must make byte-identical decisions
// to the naive O(k^2) scans they replaced. Each test keeps a from-scratch
// naive reference implementation *here* (the old linear-scan code) and
// cross-checks it against the library on fuzz-generated inputs:
//
//   * JoinEquivalence — JoinAndEmit vs the old hash-map + nested-scan
//     join: emission stream, Status, and every counter, across dense-
//     overlap, no-overlap, capped, hb==0, and empty-side configurations;
//   * SearchEquivalence — RunHalfSearch vs a naive linear-scan DFS on
//     random graphs: stored paths (order included) and work counters.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/join.h"
#include "core/search.h"
#include "graph/generators.h"
#include "util/epoch_stamp.h"
#include "util/rng.h"

namespace hcpath {
namespace {

class RecordingSink : public PathSink {
 public:
  using Event = std::pair<size_t, std::vector<VertexId>>;
  void OnPath(size_t qi, PathView p) override {
    events_.emplace_back(qi, std::vector<VertexId>(p.begin(), p.end()));
  }
  const std::vector<Event>& events() const { return events_; }

 private:
  std::vector<Event> events_;
};

// ---------------------------------------------------------------------------
// Naive reference: the pre-stamp JoinAndEmit, verbatim — per-query hash
// map keyed by backward tail, O(|pb| x |pf|) nested-scan disjointness.
// ---------------------------------------------------------------------------
StatusOr<uint64_t> NaiveJoinAndEmit(const JoinSpec& spec, size_t query_index,
                                    PathSink* sink, BatchStats* stats) {
  const PathSet& fwd = *spec.forward;
  const PathSet& bwd = *spec.backward;

  std::unordered_map<VertexId, std::vector<uint32_t>> by_midpoint;
  by_midpoint.reserve(bwd.size());
  for (size_t i = 0; i < bwd.size(); ++i) {
    const size_t len = bwd.Length(i);
    if (len < 1 || len > spec.hb) continue;
    by_midpoint[bwd.Tail(i)].push_back(static_cast<uint32_t>(i));
  }

  uint64_t emitted = 0;
  std::vector<VertexId> buf;
  auto emit = [&](PathView p) -> bool {
    if (spec.max_paths != 0 && emitted >= spec.max_paths) return false;
    sink->OnPath(query_index, p);
    ++emitted;
    if (stats != nullptr) ++stats->paths_emitted;
    return true;
  };

  for (size_t i = 0; i < fwd.size(); ++i) {
    const size_t len = fwd.Length(i);
    if (len > spec.hf) continue;
    PathView pf = fwd[i];
    if (pf.back() == spec.t) {
      if (!emit(pf)) {
        return Status::ResourceExhausted("query exceeded max_paths");
      }
    }
    if (len != spec.hf || spec.hb == 0) continue;
    auto it = by_midpoint.find(pf.back());
    if (it == by_midpoint.end()) continue;
    for (uint32_t bi : it->second) {
      PathView pb = bwd[bi];
      if (stats != nullptr) ++stats->join_probes;
      bool disjoint = true;
      for (size_t j = 0; j + 1 < pb.size(); ++j) {
        for (VertexId w : pf) {
          if (w == pb[j]) {
            disjoint = false;
            break;
          }
        }
        if (!disjoint) break;
      }
      if (!disjoint) {
        if (stats != nullptr) ++stats->join_rejected;
        continue;
      }
      buf.assign(pf.begin(), pf.end());
      for (size_t j = pb.size() - 1; j-- > 0;) buf.push_back(pb[j]);
      if (!emit(buf)) {
        return Status::ResourceExhausted("query exceeded max_paths");
      }
    }
  }
  return emitted;
}

/// Random *simple* path of `len` hops starting at `head`, optionally
/// forced to end at `tail` — JoinAndEmit requires vertex-distinct forward
/// paths (the half searches produce nothing else; see JoinSpec). Sampled
/// without replacement; the path comes out shorter than `len` when the
/// universe is exhausted, and small universes force dense vertex overlap
/// *between* paths (the rejection-heavy probe regime).
std::vector<VertexId> RandomSimplePath(Rng& rng, VertexId head, size_t len,
                                       uint32_t universe,
                                       VertexId tail = kInvalidVertex) {
  std::vector<VertexId> p = {head};
  const bool forced = tail != kInvalidVertex && tail != head && len >= 1;
  const size_t hops = forced ? len - 1 : len;
  for (size_t i = 0; i < hops; ++i) {
    if (p.size() + (forced ? 1 : 0) >= universe) break;
    VertexId v;
    do {
      v = static_cast<VertexId>(rng.NextBounded(universe));
    } while (v == tail || std::find(p.begin(), p.end(), v) != p.end());
    p.push_back(v);
  }
  if (forced) p.push_back(tail);
  return p;
}

void RunOneJoinConfig(uint64_t seed) {
  Rng rng(seed);
  // Small universes provoke dense overlap (rejection-heavy joins), large
  // ones keep paths disjoint (acceptance-heavy); both regimes matter.
  const uint32_t universes[] = {6, 12, 40, 10000};
  const uint32_t universe = universes[rng.NextBounded(4)];
  JoinSpec spec;
  spec.s = static_cast<VertexId>(rng.NextBounded(universe));
  spec.t = static_cast<VertexId>(rng.NextBounded(universe));
  spec.hf = static_cast<Hop>(1 + rng.NextBounded(10));
  // hb == 0 included; the range straddles kJoinBatchMinHb so both the
  // fused short-span loop and the run-batched TestAnySpans path (spans
  // past one full gather, exercising its overlapped tail) are fuzzed.
  spec.hb = static_cast<Hop>(rng.NextBounded(15));
  if (rng.NextBounded(6) == 0) spec.max_paths = 1 + rng.NextBounded(20);

  PathSet fwd, bwd;
  const size_t nf = rng.NextBounded(60);  // empty sides included
  const size_t nb = rng.NextBounded(60);
  // Shared midpoint pool: forces tail collisions so buckets hold several
  // backward paths and probes actually happen.
  std::vector<VertexId> midpoints;
  for (int i = 0; i < 4; ++i) {
    midpoints.push_back(static_cast<VertexId>(rng.NextBounded(universe)));
  }
  for (size_t i = 0; i < nf; ++i) {
    // Lengths straddle hf so the len == hf filter is exercised.
    const size_t len = rng.NextBounded(spec.hf + 3);
    VertexId tail = kInvalidVertex;
    if (rng.NextBounded(2) == 0) {
      tail = midpoints[rng.NextBounded(midpoints.size())];
    }
    if (rng.NextBounded(8) == 0) tail = spec.t;
    fwd.Add(RandomSimplePath(rng, spec.s, len, universe, tail));
  }
  for (size_t i = 0; i < nb; ++i) {
    const size_t len = rng.NextBounded(spec.hb + 3);
    VertexId tail = kInvalidVertex;
    if (rng.NextBounded(3) != 0) {
      tail = midpoints[rng.NextBounded(midpoints.size())];
    }
    bwd.Add(RandomSimplePath(rng, spec.t, len, universe, tail));
  }
  spec.forward = &fwd;
  spec.backward = &bwd;

  SCOPED_TRACE("universe=" + std::to_string(universe) +
               " hf=" + std::to_string(spec.hf) +
               " hb=" + std::to_string(spec.hb) +
               " |fwd|=" + std::to_string(nf) +
               " |bwd|=" + std::to_string(nb) +
               " cap=" + std::to_string(spec.max_paths));

  RecordingSink naive_sink;
  BatchStats naive_stats;
  auto naive = NaiveJoinAndEmit(spec, 7, &naive_sink, &naive_stats);

  // Every kernel mode must reproduce the naive reference byte for byte:
  // kAuto flips between nested scans and the stamped probe on forward-path
  // length (both sides of the cutover appear in the fuzzed lengths),
  // kStamped forces the incremental-restamp TestAny probe even for short
  // paths, kNaive forces nested scans everywhere.
  for (KernelMode mode :
       {KernelMode::kAuto, KernelMode::kStamped, KernelMode::kNaive}) {
    SCOPED_TRACE(std::string("kernel=") + KernelModeName(mode));
    JoinSpec kspec = spec;
    kspec.kernel = mode;
    RecordingSink sink;
    BatchStats stats;
    auto got = JoinAndEmit(kspec, 7, &sink, &stats);

    EXPECT_EQ(got.status().code(), naive.status().code());
    EXPECT_EQ(got.status().message(), naive.status().message());
    if (naive.ok() && got.ok()) {
      EXPECT_EQ(*got, *naive);
    }
    EXPECT_EQ(sink.events(), naive_sink.events())
        << "emission streams diverge";
    EXPECT_EQ(stats.paths_emitted, naive_stats.paths_emitted);
    EXPECT_EQ(stats.join_probes, naive_stats.join_probes);
    EXPECT_EQ(stats.join_rejected, naive_stats.join_rejected);
  }
}

TEST(KernelEquivalence, JoinEquivalence) {
  constexpr uint64_t kBaseSeed = 0xAB12CD34EF56ull;
  for (int c = 0; c < 400; ++c) {
    SCOPED_TRACE("join config #" + std::to_string(c));
    RunOneJoinConfig(kBaseSeed + static_cast<uint64_t>(c));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// ---------------------------------------------------------------------------
// Naive reference half search: the pre-stamp DFS, linear-scanning the
// current path per expanded edge. No deps (the splice path is covered by
// JoinEquivalence-style disjointness plus the differential fuzz suite);
// slacks, join filter, and caps are exercised.
// ---------------------------------------------------------------------------
struct NaiveCtx {
  const Graph& g;
  const HalfSearchSpec& spec;
  PathSet* out;
  BatchStats* stats;
  std::vector<VertexId> path;
  Status status = Status::OK();
};

bool NaiveAdmissible(const HalfSearchSpec& spec, VertexId u, int depth) {
  if (spec.slacks.empty()) return true;
  for (const TargetSlack& ts : spec.slacks) {
    Hop d = ts.dist->Lookup(u);
    if (d != kUnreachable && d <= ts.slack - depth) return true;
  }
  return false;
}

bool NaiveDfs(NaiveCtx& c) {
  const size_t len = c.path.size() - 1;
  bool store = true;
  if (c.spec.filter_for_join) {
    store = len == c.spec.budget || c.path.back() == c.spec.store_target;
  }
  if (store) {
    if (c.spec.max_paths != 0 && c.out->size() >= c.spec.max_paths) {
      c.status = Status::ResourceExhausted(
          "half search exceeded max_paths = " +
          std::to_string(c.spec.max_paths));
      return false;
    }
    c.out->Add(c.path);
  }
  if (len >= c.spec.budget) return true;
  const int depth = static_cast<int>(len) + 1;
  for (VertexId u : c.g.Neighbors(c.path.back(), c.spec.dir)) {
    if (c.stats != nullptr) ++c.stats->edges_expanded;
    if (!NaiveAdmissible(c.spec, u, depth)) {
      if (c.stats != nullptr) ++c.stats->edges_pruned;
      continue;
    }
    bool on_path = false;
    for (VertexId w : c.path) {
      if (w == u) {
        on_path = true;
        break;
      }
    }
    if (on_path) continue;
    c.path.push_back(u);
    const bool keep_going = NaiveDfs(c);
    c.path.pop_back();
    if (!keep_going) return false;
  }
  return true;
}

void RunOneSearchConfig(uint64_t seed) {
  Rng rng(seed);
  Graph g = [&] {
    switch (rng.NextBounded(3)) {
      case 0:
        return *GenerateErdosRenyi(
            static_cast<VertexId>(8 + rng.NextBounded(30)),
            20 + rng.NextBounded(80), rng);
      case 1:
        return *GenerateComplete(
            static_cast<VertexId>(5 + rng.NextBounded(4)));
      default:
        return *GenerateSmallWorld(
            static_cast<VertexId>(10 + rng.NextBounded(30)), 3, 0.2, rng);
    }
  }();

  HalfSearchSpec spec;
  spec.start = static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
  spec.budget = static_cast<Hop>(1 + rng.NextBounded(6));
  spec.dir = rng.NextBounded(2) == 0 ? Direction::kForward
                                     : Direction::kBackward;
  if (rng.NextBounded(5) == 0) spec.max_paths = 1 + rng.NextBounded(40);
  if (rng.NextBounded(3) == 0) {
    spec.filter_for_join = true;
    spec.store_target =
        static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
  }

  SCOPED_TRACE("n=" + std::to_string(g.NumVertices()) +
               " start=" + std::to_string(spec.start) +
               " budget=" + std::to_string(spec.budget) +
               " cap=" + std::to_string(spec.max_paths));

  PathSet naive_out;
  BatchStats naive_stats;
  NaiveCtx naive{g, spec, &naive_out, &naive_stats, {}, Status::OK()};
  naive.path.push_back(spec.start);
  NaiveDfs(naive);

  // kAuto and kStamped both take the TestBatch cycle-check path in the
  // DFS; kNaive linear-scans like the reference. All three must match it.
  for (KernelMode mode :
       {KernelMode::kAuto, KernelMode::kStamped, KernelMode::kNaive}) {
    SCOPED_TRACE(std::string("kernel=") + KernelModeName(mode));
    HalfSearchSpec kspec = spec;
    kspec.kernel = mode;
    PathSet out;
    BatchStats stats;
    Status st = RunHalfSearch(g, kspec, &out, &stats);

    EXPECT_EQ(st.code(), naive.status.code());
    EXPECT_EQ(st.message(), naive.status.message());
    ASSERT_EQ(out.size(), naive_out.size());
    for (size_t i = 0; i < naive_out.size(); ++i) {
      ASSERT_TRUE(std::ranges::equal(out[i], naive_out[i]))
          << "path " << i << " diverges (order matters)";
    }
    EXPECT_EQ(stats.edges_expanded, naive_stats.edges_expanded);
    EXPECT_EQ(stats.edges_pruned, naive_stats.edges_pruned);
  }
}

TEST(KernelEquivalence, SearchEquivalence) {
  constexpr uint64_t kBaseSeed = 0x5EA2C4D8F00Dull;
  for (int c = 0; c < 200; ++c) {
    SCOPED_TRACE("search config #" + std::to_string(c));
    RunOneSearchConfig(kBaseSeed + static_cast<uint64_t>(c));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// ---------------------------------------------------------------------------
// Stamp-probe differential: TestAny / TestBatch against a per-vertex
// Contains() loop on the same table — the ground truth both the AVX2
// gather and the unrolled scalar kernel must reproduce. Covers span
// lengths 0..40 (straddling the 8-lane SIMD entry and the join's adaptive
// cutover), unaligned sub-spans, vertex ids past the table's capacity
// (masked gather lanes), Unmark'ed slots, and an epoch wraparound
// mid-sequence. The whole sweep runs twice, once per dispatch target.
// ---------------------------------------------------------------------------
void CheckProbesMatchContains(const EpochStampTable& table,
                              std::span<const uint32_t> vs) {
  bool want_any = false;
  std::vector<uint8_t> want(vs.size(), 0);
  for (size_t i = 0; i < vs.size(); ++i) {
    want[i] = table.Contains(vs[i]) ? 1 : 0;
    want_any = want_any || want[i] != 0;
  }
  EXPECT_EQ(table.TestAny(vs), want_any);

  std::vector<uint8_t> hits(vs.size() + 1, 0xCD);
  table.TestBatch(vs, hits.data());
  for (size_t i = 0; i < vs.size(); ++i) {
    ASSERT_EQ(hits[i], want[i]) << "lane " << i << " of " << vs.size();
  }
  EXPECT_EQ(hits[vs.size()], 0xCD) << "TestBatch wrote past the span";
}

void RunStampProbeSweep() {
  // 97 is not a multiple of the lane width, so every length hits a scalar
  // tail; the table only grows to the highest Mark'ed id, so pool entries
  // above it exercise the masked out-of-bounds gather lanes.
  constexpr uint32_t kUniverse = 97;
  Rng rng(0x51A3B007C4F5ull);
  EpochStampTable table;
  std::vector<uint32_t> marked;
  for (uint32_t v = 0; v < kUniverse; ++v) {
    if (rng.NextBounded(3) == 0) {
      table.Mark(v);
      marked.push_back(v);
    }
  }
  std::vector<uint32_t> pool;
  for (int i = 0; i < 64; ++i) {
    pool.push_back(rng.NextBounded(kUniverse));
  }
  const std::span<const uint32_t> all(pool);
  for (size_t len = 0; len <= 40; ++len) {
    for (size_t off = 0; off < 4; ++off) {
      SCOPED_TRACE("len=" + std::to_string(len) +
                   " off=" + std::to_string(off));
      CheckProbesMatchContains(table, all.subspan(off, len));
      if (::testing::Test::HasFatalFailure()) return;
    }
  }

  // Unmark'ed slots hold stamp 0, which no live epoch equals.
  for (size_t i = 0; i < marked.size(); i += 2) table.Unmark(marked[i]);
  CheckProbesMatchContains(table, all);

  // Epoch wraparound mid-sequence: marks stamped UINT32_MAX must read as
  // present, then Clear() wraps to epoch 1 — stale UINT32_MAX stamps must
  // not resurface as hits.
  table.TestOnlySetEpoch(UINT32_MAX - 1);
  table.Clear();  // epoch UINT32_MAX
  for (uint32_t v = 0; v < kUniverse; v += 2) table.Mark(v);
  CheckProbesMatchContains(table, all);
  table.Clear();  // wraps: storage re-zeroed, epoch restarts at 1
  EXPECT_EQ(table.epoch(), 1u);
  EXPECT_FALSE(table.TestAny(all));
  CheckProbesMatchContains(table, all);
  for (uint32_t v = 1; v < kUniverse; v += 3) table.Mark(v);
  CheckProbesMatchContains(table, all);
}

TEST(KernelEquivalence, StampProbeDifferential) {
  struct DispatchGuard {  // restore default dispatch even on early failure
    ~DispatchGuard() { EpochStampTable::TestOnlyForceScalar(-1); }
  } guard;
  // Forced scalar first (the oracle), then whatever the host dispatches
  // to — AVX2 where supported. Identical seed, identical expectations:
  // any SIMD-vs-scalar divergence fails one leg and not the other.
  EpochStampTable::TestOnlyForceScalar(1);
  {
    SCOPED_TRACE("dispatch=forced-scalar");
    RunStampProbeSweep();
  }
  EpochStampTable::TestOnlyForceScalar(0);
  {
    SCOPED_TRACE(EpochStampTable::UsingSimd() ? "dispatch=avx2"
                                              : "dispatch=scalar-host");
    RunStampProbeSweep();
  }
}

}  // namespace
}  // namespace hcpath
