// Kernel-equivalence suite for the epoch-stamped membership rewrite
// (docs/PERF.md): the stamped kernels must make byte-identical decisions
// to the naive O(k^2) scans they replaced. Each test keeps a from-scratch
// naive reference implementation *here* (the old linear-scan code) and
// cross-checks it against the library on fuzz-generated inputs:
//
//   * JoinEquivalence — JoinAndEmit vs the old hash-map + nested-scan
//     join: emission stream, Status, and every counter, across dense-
//     overlap, no-overlap, capped, hb==0, and empty-side configurations;
//   * SearchEquivalence — RunHalfSearch vs a naive linear-scan DFS on
//     random graphs: stored paths (order included) and work counters.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/join.h"
#include "core/search.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace hcpath {
namespace {

class RecordingSink : public PathSink {
 public:
  using Event = std::pair<size_t, std::vector<VertexId>>;
  void OnPath(size_t qi, PathView p) override {
    events_.emplace_back(qi, std::vector<VertexId>(p.begin(), p.end()));
  }
  const std::vector<Event>& events() const { return events_; }

 private:
  std::vector<Event> events_;
};

// ---------------------------------------------------------------------------
// Naive reference: the pre-stamp JoinAndEmit, verbatim — per-query hash
// map keyed by backward tail, O(|pb| x |pf|) nested-scan disjointness.
// ---------------------------------------------------------------------------
StatusOr<uint64_t> NaiveJoinAndEmit(const JoinSpec& spec, size_t query_index,
                                    PathSink* sink, BatchStats* stats) {
  const PathSet& fwd = *spec.forward;
  const PathSet& bwd = *spec.backward;

  std::unordered_map<VertexId, std::vector<uint32_t>> by_midpoint;
  by_midpoint.reserve(bwd.size());
  for (size_t i = 0; i < bwd.size(); ++i) {
    const size_t len = bwd.Length(i);
    if (len < 1 || len > spec.hb) continue;
    by_midpoint[bwd.Tail(i)].push_back(static_cast<uint32_t>(i));
  }

  uint64_t emitted = 0;
  std::vector<VertexId> buf;
  auto emit = [&](PathView p) -> bool {
    if (spec.max_paths != 0 && emitted >= spec.max_paths) return false;
    sink->OnPath(query_index, p);
    ++emitted;
    if (stats != nullptr) ++stats->paths_emitted;
    return true;
  };

  for (size_t i = 0; i < fwd.size(); ++i) {
    const size_t len = fwd.Length(i);
    if (len > spec.hf) continue;
    PathView pf = fwd[i];
    if (pf.back() == spec.t) {
      if (!emit(pf)) {
        return Status::ResourceExhausted("query exceeded max_paths");
      }
    }
    if (len != spec.hf || spec.hb == 0) continue;
    auto it = by_midpoint.find(pf.back());
    if (it == by_midpoint.end()) continue;
    for (uint32_t bi : it->second) {
      PathView pb = bwd[bi];
      if (stats != nullptr) ++stats->join_probes;
      bool disjoint = true;
      for (size_t j = 0; j + 1 < pb.size(); ++j) {
        for (VertexId w : pf) {
          if (w == pb[j]) {
            disjoint = false;
            break;
          }
        }
        if (!disjoint) break;
      }
      if (!disjoint) {
        if (stats != nullptr) ++stats->join_rejected;
        continue;
      }
      buf.assign(pf.begin(), pf.end());
      for (size_t j = pb.size() - 1; j-- > 0;) buf.push_back(pb[j]);
      if (!emit(buf)) {
        return Status::ResourceExhausted("query exceeded max_paths");
      }
    }
  }
  return emitted;
}

/// Random path of `len` hops starting at `head`. `universe` bounds vertex
/// ids; small universes force dense vertex overlap between paths.
std::vector<VertexId> RandomPath(Rng& rng, VertexId head, size_t len,
                                 uint32_t universe) {
  std::vector<VertexId> p = {head};
  for (size_t i = 0; i < len; ++i) {
    p.push_back(static_cast<VertexId>(rng.NextBounded(universe)));
  }
  return p;
}

void RunOneJoinConfig(uint64_t seed) {
  Rng rng(seed);
  // Small universes provoke dense overlap (rejection-heavy joins), large
  // ones keep paths disjoint (acceptance-heavy); both regimes matter.
  const uint32_t universes[] = {6, 12, 40, 10000};
  const uint32_t universe = universes[rng.NextBounded(4)];
  JoinSpec spec;
  spec.s = static_cast<VertexId>(rng.NextBounded(universe));
  spec.t = static_cast<VertexId>(rng.NextBounded(universe));
  spec.hf = static_cast<Hop>(1 + rng.NextBounded(10));
  spec.hb = static_cast<Hop>(rng.NextBounded(11));  // hb == 0 included
  if (rng.NextBounded(6) == 0) spec.max_paths = 1 + rng.NextBounded(20);

  PathSet fwd, bwd;
  const size_t nf = rng.NextBounded(60);  // empty sides included
  const size_t nb = rng.NextBounded(60);
  // Shared midpoint pool: forces tail collisions so buckets hold several
  // backward paths and probes actually happen.
  std::vector<VertexId> midpoints;
  for (int i = 0; i < 4; ++i) {
    midpoints.push_back(static_cast<VertexId>(rng.NextBounded(universe)));
  }
  for (size_t i = 0; i < nf; ++i) {
    // Lengths straddle hf so the len == hf filter is exercised.
    const size_t len = rng.NextBounded(spec.hf + 3);
    std::vector<VertexId> p = RandomPath(rng, spec.s, len, universe);
    if (!p.empty() && rng.NextBounded(2) == 0) {
      p.back() = midpoints[rng.NextBounded(midpoints.size())];
    }
    if (rng.NextBounded(8) == 0 && p.size() > 1) p.back() = spec.t;
    fwd.Add(p);
  }
  for (size_t i = 0; i < nb; ++i) {
    const size_t len = rng.NextBounded(spec.hb + 3);
    std::vector<VertexId> p = RandomPath(rng, spec.t, len, universe);
    if (p.size() > 1 && rng.NextBounded(3) != 0) {
      p.back() = midpoints[rng.NextBounded(midpoints.size())];
    }
    bwd.Add(p);
  }
  spec.forward = &fwd;
  spec.backward = &bwd;

  SCOPED_TRACE("universe=" + std::to_string(universe) +
               " hf=" + std::to_string(spec.hf) +
               " hb=" + std::to_string(spec.hb) +
               " |fwd|=" + std::to_string(nf) +
               " |bwd|=" + std::to_string(nb) +
               " cap=" + std::to_string(spec.max_paths));

  RecordingSink naive_sink, stamped_sink;
  BatchStats naive_stats, stamped_stats;
  auto naive = NaiveJoinAndEmit(spec, 7, &naive_sink, &naive_stats);
  auto stamped = JoinAndEmit(spec, 7, &stamped_sink, &stamped_stats);

  EXPECT_EQ(stamped.status().code(), naive.status().code());
  EXPECT_EQ(stamped.status().message(), naive.status().message());
  if (naive.ok() && stamped.ok()) {
    EXPECT_EQ(*stamped, *naive);
  }
  EXPECT_EQ(stamped_sink.events(), naive_sink.events())
      << "emission streams diverge";
  EXPECT_EQ(stamped_stats.paths_emitted, naive_stats.paths_emitted);
  EXPECT_EQ(stamped_stats.join_probes, naive_stats.join_probes);
  EXPECT_EQ(stamped_stats.join_rejected, naive_stats.join_rejected);
}

TEST(KernelEquivalence, JoinEquivalence) {
  constexpr uint64_t kBaseSeed = 0xAB12CD34EF56ull;
  for (int c = 0; c < 400; ++c) {
    SCOPED_TRACE("join config #" + std::to_string(c));
    RunOneJoinConfig(kBaseSeed + static_cast<uint64_t>(c));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// ---------------------------------------------------------------------------
// Naive reference half search: the pre-stamp DFS, linear-scanning the
// current path per expanded edge. No deps (the splice path is covered by
// JoinEquivalence-style disjointness plus the differential fuzz suite);
// slacks, join filter, and caps are exercised.
// ---------------------------------------------------------------------------
struct NaiveCtx {
  const Graph& g;
  const HalfSearchSpec& spec;
  PathSet* out;
  BatchStats* stats;
  std::vector<VertexId> path;
  Status status = Status::OK();
};

bool NaiveAdmissible(const HalfSearchSpec& spec, VertexId u, int depth) {
  if (spec.slacks.empty()) return true;
  for (const TargetSlack& ts : spec.slacks) {
    Hop d = ts.dist->Lookup(u);
    if (d != kUnreachable && d <= ts.slack - depth) return true;
  }
  return false;
}

bool NaiveDfs(NaiveCtx& c) {
  const size_t len = c.path.size() - 1;
  bool store = true;
  if (c.spec.filter_for_join) {
    store = len == c.spec.budget || c.path.back() == c.spec.store_target;
  }
  if (store) {
    if (c.spec.max_paths != 0 && c.out->size() >= c.spec.max_paths) {
      c.status = Status::ResourceExhausted(
          "half search exceeded max_paths = " +
          std::to_string(c.spec.max_paths));
      return false;
    }
    c.out->Add(c.path);
  }
  if (len >= c.spec.budget) return true;
  const int depth = static_cast<int>(len) + 1;
  for (VertexId u : c.g.Neighbors(c.path.back(), c.spec.dir)) {
    if (c.stats != nullptr) ++c.stats->edges_expanded;
    if (!NaiveAdmissible(c.spec, u, depth)) {
      if (c.stats != nullptr) ++c.stats->edges_pruned;
      continue;
    }
    bool on_path = false;
    for (VertexId w : c.path) {
      if (w == u) {
        on_path = true;
        break;
      }
    }
    if (on_path) continue;
    c.path.push_back(u);
    const bool keep_going = NaiveDfs(c);
    c.path.pop_back();
    if (!keep_going) return false;
  }
  return true;
}

void RunOneSearchConfig(uint64_t seed) {
  Rng rng(seed);
  Graph g = [&] {
    switch (rng.NextBounded(3)) {
      case 0:
        return *GenerateErdosRenyi(
            static_cast<VertexId>(8 + rng.NextBounded(30)),
            20 + rng.NextBounded(80), rng);
      case 1:
        return *GenerateComplete(
            static_cast<VertexId>(5 + rng.NextBounded(4)));
      default:
        return *GenerateSmallWorld(
            static_cast<VertexId>(10 + rng.NextBounded(30)), 3, 0.2, rng);
    }
  }();

  HalfSearchSpec spec;
  spec.start = static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
  spec.budget = static_cast<Hop>(1 + rng.NextBounded(6));
  spec.dir = rng.NextBounded(2) == 0 ? Direction::kForward
                                     : Direction::kBackward;
  if (rng.NextBounded(5) == 0) spec.max_paths = 1 + rng.NextBounded(40);
  if (rng.NextBounded(3) == 0) {
    spec.filter_for_join = true;
    spec.store_target =
        static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
  }

  SCOPED_TRACE("n=" + std::to_string(g.NumVertices()) +
               " start=" + std::to_string(spec.start) +
               " budget=" + std::to_string(spec.budget) +
               " cap=" + std::to_string(spec.max_paths));

  PathSet naive_out, stamped_out;
  BatchStats naive_stats, stamped_stats;
  NaiveCtx naive{g, spec, &naive_out, &naive_stats, {}, Status::OK()};
  naive.path.push_back(spec.start);
  NaiveDfs(naive);
  Status stamped = RunHalfSearch(g, spec, &stamped_out, &stamped_stats);

  EXPECT_EQ(stamped.code(), naive.status.code());
  EXPECT_EQ(stamped.message(), naive.status.message());
  ASSERT_EQ(stamped_out.size(), naive_out.size());
  for (size_t i = 0; i < naive_out.size(); ++i) {
    ASSERT_TRUE(std::ranges::equal(stamped_out[i], naive_out[i]))
        << "path " << i << " diverges (order matters)";
  }
  EXPECT_EQ(stamped_stats.edges_expanded, naive_stats.edges_expanded);
  EXPECT_EQ(stamped_stats.edges_pruned, naive_stats.edges_pruned);
}

TEST(KernelEquivalence, SearchEquivalence) {
  constexpr uint64_t kBaseSeed = 0x5EA2C4D8F00Dull;
  for (int c = 0; c < 200; ++c) {
    SCOPED_TRACE("search config #" + std::to_string(c));
    RunOneSearchConfig(kBaseSeed + static_cast<uint64_t>(c));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace hcpath
