// Endpoint-cache spill/restore (index/cache_persist.h, docs/PERSIST.md):
// round-trip identity, LRU-order preservation into smaller caches, the
// graph-content revalidation gate, corruption Statuses, and the
// engine-level warm-restart integration (SaveSnapshot + SaveDistanceCache
// then OpenSnapshot + RestoreDistanceCache → warm hits, identical paths).

#include "index/cache_persist.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/graph_snapshot_io.h"
#include "graph/graph_store.h"
#include "service/path_engine.h"
#include "util/rng.h"
#include "workload/query_gen.h"

namespace hcpath {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

VertexDistMap MakeMap(size_t universe,
                      const std::vector<std::pair<VertexId, Hop>>& pairs) {
  VertexDistMap m;
  m.SetUniverse(universe);
  for (auto [v, d] : pairs) m.InsertMin(v, d);
  return m;
}

TEST(CachePersist, RoundTripIdentity) {
  Rng rng(31);
  auto g = GenerateErdosRenyi(60, 240, rng);
  EndpointDistanceCache cache(16);
  cache.Insert(3, Direction::kForward, 4, 0,
               MakeMap(60, {{3, 0}, {5, 1}, {9, 2}}));
  cache.Insert(7, Direction::kBackward, 3, 0, MakeMap(60, {{7, 0}, {2, 1}}));

  std::string path = TempPath("spill_rt.hcc");
  CacheSpillInfo save_info;
  ASSERT_TRUE(
      SaveEndpointCacheSpill(cache, 0, *g, path, &save_info).ok());
  EXPECT_EQ(save_info.entry_count, 2u);
  EXPECT_EQ(save_info.graph_checksum, GraphContentChecksum(*g));

  // Restore into a fresh cache at a later epoch: lookups at that epoch
  // must hit with identical map content.
  EndpointDistanceCache fresh(16);
  auto restored = RestoreEndpointCacheSpill(&fresh, 5, *g, path);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(*restored, 2u);

  VertexDistMap out;
  ASSERT_TRUE(fresh.Lookup(3, Direction::kForward, 4, 5, &out));
  EXPECT_EQ(out.Lookup(5), 1);
  EXPECT_EQ(out.Lookup(9), 2);
  EXPECT_EQ(out.Lookup(10), kUnreachable);
  EXPECT_EQ(out.size(), 3u);
  ASSERT_TRUE(fresh.Lookup(7, Direction::kBackward, 3, 5, &out));
  EXPECT_EQ(out.Lookup(2), 1);
  // Stamped at the restore epoch: a probe at an earlier epoch must miss.
  EXPECT_FALSE(fresh.Lookup(3, Direction::kForward, 4, 4, &out));
  std::remove(path.c_str());
}

TEST(CachePersist, ExportSkipsEntriesInvalidAtEpoch) {
  EndpointDistanceCache cache(16);
  cache.Insert(1, Direction::kForward, 3, 0, MakeMap(10, {{1, 0}}));
  cache.Insert(2, Direction::kForward, 3, 7, MakeMap(10, {{2, 0}}));
  // Only the epoch-7 entry is valid at 7.
  auto entries = cache.ExportEntries(7);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].vertex, 2u);
}

TEST(CachePersist, LruOrderSurvivesRestoreIntoSmallerCache) {
  Rng rng(32);
  auto g = GenerateErdosRenyi(40, 160, rng);
  EndpointDistanceCache cache(8);
  for (VertexId v = 0; v < 6; ++v) {
    cache.Insert(v, Direction::kForward, 3, 0, MakeMap(40, {{v, 0}}));
  }
  // Touch vertex 1 so it is the MRU at export time.
  VertexDistMap out;
  ASSERT_TRUE(cache.Lookup(1, Direction::kForward, 3, 0, &out));

  std::string path = TempPath("spill_lru.hcc");
  ASSERT_TRUE(SaveEndpointCacheSpill(cache, 0, *g, path).ok());

  // A 1-entry restore target keeps exactly the hottest entry.
  EndpointDistanceCache tiny(1);
  auto restored = RestoreEndpointCacheSpill(&tiny, 0, *g, path);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(*restored, 1u);
  EXPECT_TRUE(tiny.Lookup(1, Direction::kForward, 3, 0, &out));
  std::remove(path.c_str());
}

TEST(CachePersist, GraphMismatchIsFailedPrecondition) {
  Rng rng(33);
  auto g1 = GenerateErdosRenyi(50, 200, rng);
  auto g2 = GenerateErdosRenyi(50, 200, rng);  // same n, different edges
  ASSERT_NE(GraphContentChecksum(*g1), GraphContentChecksum(*g2));
  EndpointDistanceCache cache(8);
  cache.Insert(0, Direction::kForward, 3, 0, MakeMap(50, {{0, 0}}));
  std::string path = TempPath("spill_mismatch.hcc");
  ASSERT_TRUE(SaveEndpointCacheSpill(cache, 0, *g1, path).ok());

  EndpointDistanceCache fresh(8);
  auto restored = RestoreEndpointCacheSpill(&fresh, 0, *g2, path);
  EXPECT_EQ(restored.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(fresh.entries(), 0u);
  std::remove(path.c_str());
}

TEST(CachePersist, CorruptSpillIsCleanStatus) {
  Rng rng(34);
  auto g = GenerateErdosRenyi(30, 120, rng);
  EndpointDistanceCache cache(8);
  cache.Insert(0, Direction::kForward, 3, 0,
               MakeMap(30, {{0, 0}, {4, 1}, {9, 2}}));
  std::string path = TempPath("spill_corrupt.hcc");
  ASSERT_TRUE(SaveEndpointCacheSpill(cache, 0, *g, path).ok());

  // Payload corruption → InvalidArgument (checksum).
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-2, std::ios::end);
    char b = 0x7F;
    f.write(&b, 1);
  }
  EndpointDistanceCache fresh(8);
  auto restored = RestoreEndpointCacheSpill(&fresh, 0, *g, path);
  EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);

  // Truncation → InvalidArgument.
  ASSERT_TRUE(SaveEndpointCacheSpill(cache, 0, *g, path).ok());
  std::filesystem::resize_file(
      path, std::filesystem::file_size(path) - 3);
  restored = RestoreEndpointCacheSpill(&fresh, 0, *g, path);
  EXPECT_FALSE(restored.ok());

  // Garbage → InvalidArgument; missing → IOError.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "definitely not a cache spill, far too short";
  }
  restored = RestoreEndpointCacheSpill(&fresh, 0, *g, path);
  EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
  restored = RestoreEndpointCacheSpill(&fresh, 0, *g, path);
  EXPECT_EQ(restored.status().code(), StatusCode::kIOError);
  EXPECT_EQ(ReadCacheSpillInfo(path).status().code(), StatusCode::kIOError);
}

TEST(CachePersist, ReadInfoMatchesSave) {
  Rng rng(35);
  auto g = GenerateErdosRenyi(30, 120, rng);
  EndpointDistanceCache cache(8);
  cache.Insert(0, Direction::kForward, 3, 2, MakeMap(30, {{0, 0}}));
  std::string path = TempPath("spill_info.hcc");
  CacheSpillInfo save_info;
  ASSERT_TRUE(SaveEndpointCacheSpill(cache, 2, *g, path, &save_info).ok());
  auto info = ReadCacheSpillInfo(path);
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->epoch, 2u);
  EXPECT_EQ(info->entry_count, 1u);
  EXPECT_EQ(info->graph_checksum, save_info.graph_checksum);
  EXPECT_EQ(info->file_bytes, save_info.file_bytes);
  std::remove(path.c_str());
}

/// The integration the tentpole promises: engine A serves traffic warm,
/// checkpoints graph + cache; a restarted engine B reopens both and its
/// FIRST batch hits the cache, with paths identical to a cold engine.
TEST(CachePersist, EngineWarmRestartIntegration) {
  Rng rng(36);
  auto g = GenerateBarabasiAlbert(400, 5, rng);
  auto queries = GenerateRandomQueries(*g, 24, QueryGenOptions{}, rng);
  ASSERT_TRUE(queries.ok()) << queries.status();

  PathEngineOptions opt;
  opt.max_wait_seconds = 0;
  opt.max_batch_size = 1 << 20;
  opt.batch.num_threads = 1;

  std::string snap_path = TempPath("warm_restart.hcs");
  std::string spill_path = TempPath("warm_restart.hcc");
  std::vector<std::vector<std::vector<VertexId>>> warm_paths;

  {
    GraphStore store(*g);
    PathEngine engine(&store, opt);
    ASSERT_TRUE(engine.status().ok());
    std::vector<std::future<QueryResult>> futs;
    for (const auto& q : *queries) futs.push_back(engine.Submit(q));
    engine.Flush();
    engine.Drain();
    for (auto& f : futs) {
      QueryResult r = f.get();
      ASSERT_TRUE(r.status.ok()) << r.status;
      warm_paths.push_back(r.paths.ToSortedVectors());
    }
    ASSERT_GT(engine.distance_cache()->entries(), 0u);
    ASSERT_TRUE(store.SaveSnapshot(snap_path).ok());
    ASSERT_TRUE(engine.SaveDistanceCache(spill_path).ok());
  }

  // "Restarted process": reopen the snapshot (mmap) and restore the spill.
  auto store2 = GraphStore::OpenSnapshot(snap_path);
  ASSERT_TRUE(store2.ok()) << store2.status();
  PathEngine engine2(store2->get(), opt);
  ASSERT_TRUE(engine2.status().ok());
  auto restored = engine2.RestoreDistanceCache(spill_path);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_GT(*restored, 0u);

  std::vector<std::future<QueryResult>> futs;
  for (const auto& q : *queries) futs.push_back(engine2.Submit(q));
  engine2.Flush();
  engine2.Drain();
  for (size_t i = 0; i < futs.size(); ++i) {
    QueryResult r = futs[i].get();
    ASSERT_TRUE(r.status.ok()) << r.status;
    EXPECT_EQ(r.paths.ToSortedVectors(), warm_paths[i]) << i;
  }
  // The restored cache must serve warm hits on the very first batch.
  EXPECT_GT(engine2.GetStats().distance_cache_hits, 0u);

  // A cache spilled against this graph must be refused by an engine
  // serving different content.
  std::vector<EdgeUpdate> tweak = {EdgeUpdate::Add(0, 399)};
  ASSERT_TRUE(engine2.ApplyUpdates(tweak).ok());
  auto refused = engine2.RestoreDistanceCache(spill_path);
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);

  std::remove(snap_path.c_str());
  std::remove(spill_path.c_str());
}

TEST(CachePersist, DisabledCacheIsFailedPrecondition) {
  Rng rng(37);
  auto g = GenerateErdosRenyi(30, 120, rng);
  PathEngineOptions opt;
  opt.max_wait_seconds = 0;
  opt.enable_distance_cache = false;
  PathEngine engine(*g, opt);
  ASSERT_TRUE(engine.status().ok());
  std::string path = TempPath("spill_disabled.hcc");
  EXPECT_EQ(engine.SaveDistanceCache(path).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine.RestoreDistanceCache(path).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace hcpath
