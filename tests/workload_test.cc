#include <gtest/gtest.h>

#include "bfs/bfs.h"
#include "workload/dataset_registry.h"
#include "workload/query_gen.h"
#include "workload/similarity_gen.h"

namespace hcpath {
namespace {

TEST(QueryGen, AllQueriesAreReachableWithinK) {
  Rng grng(1);
  auto g = MakeDataset("EP", 0.05, 7);
  ASSERT_TRUE(g.ok()) << g.status();
  Rng rng(2);
  QueryGenOptions opt;
  opt.k_min = 3;
  opt.k_max = 6;
  auto queries = GenerateRandomQueries(*g, 30, opt, rng);
  ASSERT_TRUE(queries.ok()) << queries.status();
  ASSERT_EQ(queries->size(), 30u);
  for (const PathQuery& q : *queries) {
    EXPECT_NE(q.s, q.t);
    EXPECT_GE(q.k, 3);
    EXPECT_LE(q.k, 6);
    EXPECT_TRUE(ReachableWithin(*g, q.s, q.t, static_cast<Hop>(q.k)))
        << q.ToString();
  }
}

TEST(QueryGen, DeterministicPerSeed) {
  auto g = MakeDataset("EP", 0.05, 7);
  Rng a(5), b(5);
  auto qa = GenerateRandomQueries(*g, 10, {}, a);
  auto qb = GenerateRandomQueries(*g, 10, {}, b);
  ASSERT_TRUE(qa.ok() && qb.ok());
  EXPECT_EQ(*qa, *qb);
}

TEST(QueryGen, RejectsBadKRange) {
  auto g = MakeDataset("EP", 0.05, 7);
  Rng rng(1);
  QueryGenOptions opt;
  opt.k_min = 0;
  EXPECT_FALSE(GenerateRandomQueries(*g, 5, opt, rng).ok());
  opt.k_min = 5;
  opt.k_max = 4;
  EXPECT_FALSE(GenerateRandomQueries(*g, 5, opt, rng).ok());
}

TEST(SimilarityGen, HitsLowAndHighTargets) {
  // Scale/hop range chosen so k-hop balls stay far below |V|; otherwise
  // every query pair saturates to µ ≈ 1 and similarity is meaningless.
  auto g = MakeDataset("EP", 0.3, 11);
  ASSERT_TRUE(g.ok());
  Rng rng(13);
  auto low = GenerateQueriesWithSimilarity(*g, 40, 3, 4, 0.0, rng);
  ASSERT_TRUE(low.ok()) << low.status();
  // Scale-free graphs have an intrinsic µ floor (hub-concentrated reach
  // sets overlap even for unrelated queries); require it to stay moderate.
  EXPECT_LT(low->achieved_mu, 0.5);

  Rng rng2(17);
  auto high = GenerateQueriesWithSimilarity(*g, 40, 3, 4, 0.8, rng2);
  ASSERT_TRUE(high.ok()) << high.status();
  EXPECT_GT(high->achieved_mu, 0.55);
  EXPECT_EQ(high->queries.size(), 40u);
  // The generator must produce clearly separated similarity levels.
  EXPECT_GT(high->achieved_mu - low->achieved_mu, 0.2);
}

TEST(SimilarityGen, RejectsImpossibleTarget) {
  auto g = MakeDataset("EP", 0.05, 11);
  Rng rng(1);
  EXPECT_FALSE(GenerateQueriesWithSimilarity(*g, 10, 4, 6, 1.5, rng).ok());
}

TEST(DatasetRegistry, HasAllTwelvePaperDatasets) {
  const auto& all = AllDatasets();
  ASSERT_EQ(all.size(), 12u);
  std::vector<std::string> names;
  for (const auto& spec : all) names.push_back(spec.name);
  EXPECT_EQ(names, (std::vector<std::string>{"EP", "SL", "BK", "WT", "BS",
                                             "SK", "UK", "DA", "PO", "LJ",
                                             "TW", "FS"}));
}

TEST(DatasetRegistry, FindAndMissing) {
  EXPECT_TRUE(FindDataset("TW").ok());
  EXPECT_EQ(FindDataset("TW")->full_name, "Twitter-2010");
  EXPECT_FALSE(FindDataset("XX").ok());
  EXPECT_FALSE(MakeDataset("XX", 1.0, 1).ok());
}

TEST(DatasetRegistry, ScaleShrinksGraphs) {
  auto small = MakeDataset("EP", 0.05, 3);
  auto bigger = MakeDataset("EP", 0.1, 3);
  ASSERT_TRUE(small.ok() && bigger.ok());
  EXPECT_LT(small->NumVertices(), bigger->NumVertices());
  EXPECT_LT(small->NumEdges(), bigger->NumEdges());
}

TEST(DatasetRegistry, DeterministicForSeed) {
  auto a = MakeDataset("BK", 0.05, 42);
  auto b = MakeDataset("BK", 0.05, 42);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->NumEdges(), b->NumEdges());
  EXPECT_EQ(a->Edges(), b->Edges());
}

TEST(DatasetRegistry, EveryStandInInstantiatesAtTinyScale) {
  for (const auto& spec : AllDatasets()) {
    auto g = MakeDataset(spec.name, 0.05, 1);
    ASSERT_TRUE(g.ok()) << spec.name << ": " << g.status();
    EXPECT_GT(g->NumVertices(), 0u) << spec.name;
    EXPECT_GT(g->NumEdges(), 0u) << spec.name;
  }
}

}  // namespace
}  // namespace hcpath
