#include "core/batch_enum.h"

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "graph/generators.h"
#include "test_graphs.h"

namespace hcpath {
namespace {

std::vector<PathSet> OracleResults(const Graph& g,
                                   const std::vector<PathQuery>& queries) {
  std::vector<PathSet> out;
  for (const PathQuery& q : queries) {
    out.push_back(*BruteForcePaths(g, q));
  }
  return out;
}

void ExpectBatchMatchesOracle(const Graph& g,
                              const std::vector<PathQuery>& queries,
                              const BatchOptions& options,
                              bool optimized_order) {
  CollectingSink sink(queries.size());
  BatchStats stats;
  Status st = RunBatchEnum(g, queries, options, optimized_order, &sink,
                           &stats);
  ASSERT_TRUE(st.ok()) << st;
  auto oracle = OracleResults(g, queries);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(sink.paths(i).ToSortedVectors(), oracle[i].ToSortedVectors())
        << "query " << i << " " << queries[i].ToString();
  }
}

TEST(BatchEnum, PaperExampleAllGammas) {
  Graph g = PaperFigure1Graph();
  auto queries = PaperFigure1Queries();
  for (double gamma : {0.1, 0.5, 0.8, 1.0}) {
    BatchOptions opt;
    opt.gamma = gamma;
    ExpectBatchMatchesOracle(g, queries, opt, false);
    ExpectBatchMatchesOracle(g, queries, opt, true);
  }
}

TEST(BatchEnum, SharingActuallyHappensOnCloneQueries) {
  Graph g = PaperFigure1Graph();
  std::vector<PathQuery> queries(6, PathQuery{0, 11, 5});
  CountingSink sink(queries.size());
  BatchStats stats;
  BatchOptions opt;
  ASSERT_TRUE(RunBatchEnum(g, queries, opt, false, &sink, &stats).ok());
  for (uint64_t c : sink.counts()) EXPECT_EQ(c, 3u);
  // All six queries share one forward and one backward root.
  EXPECT_EQ(stats.sharing_nodes, 2u);
}

TEST(BatchEnum, DominatingQueriesReduceExpansions) {
  Graph g = PaperFigure1Graph();
  // q0, q1 share the (v4, v9, ...) and (v1, v7, ...) subtrees.
  std::vector<PathQuery> queries = {{0, 11, 5}, {2, 13, 5}, {5, 12, 5}};
  BatchOptions opt;
  opt.gamma = 0.5;

  BatchStats shared_stats;
  CountingSink s1(3);
  ASSERT_TRUE(RunBatchEnum(g, queries, opt, false, &s1, &shared_stats).ok());

  BatchOptions no_reuse = opt;
  no_reuse.disable_cache_reuse = true;
  BatchStats solo_stats;
  CountingSink s2(3);
  ASSERT_TRUE(
      RunBatchEnum(g, queries, no_reuse, false, &s2, &solo_stats).ok());

  EXPECT_EQ(s1.counts(), s2.counts());
  EXPECT_GT(shared_stats.shortcut_splices, 0u);
  EXPECT_LT(shared_stats.edges_expanded, solo_stats.edges_expanded);
}

TEST(BatchEnum, GlobalMinPruningMatchesPerTarget) {
  Rng rng(13);
  auto g = GenerateBarabasiAlbert(150, 3, rng);
  Rng qrng(17);
  std::vector<PathQuery> queries;
  while (queries.size() < 10) {
    VertexId s = static_cast<VertexId>(qrng.NextBounded(150));
    VertexId t = static_cast<VertexId>(qrng.NextBounded(150));
    if (s != t) queries.push_back({s, t, 5});
  }
  BatchOptions per_target;
  per_target.shared_pruning = SharedPruning::kPerTarget;
  BatchOptions global;
  global.shared_pruning = SharedPruning::kGlobalMin;

  CollectingSink a(queries.size()), b(queries.size());
  ASSERT_TRUE(RunBatchEnum(*g, queries, per_target, false, &a, nullptr).ok());
  ASSERT_TRUE(RunBatchEnum(*g, queries, global, false, &b, nullptr).ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(a.paths(i).Fingerprint(), b.paths(i).Fingerprint());
  }
}

TEST(BatchEnum, DisableClusteringStillCorrect) {
  Graph g = PaperFigure1Graph();
  auto queries = PaperFigure1Queries();
  BatchOptions opt;
  opt.disable_clustering = true;
  ExpectBatchMatchesOracle(g, queries, opt, false);
}

TEST(BatchEnum, UnreachableQueriesReturnZeroPaths) {
  auto g = GeneratePath(10);
  std::vector<PathQuery> queries = {{0, 9, 4},   // unreachable within 4
                                    {0, 3, 4},   // 1 path
                                    {9, 0, 8}};  // wrong direction
  CountingSink sink(3);
  BatchOptions opt;
  ASSERT_TRUE(RunBatchEnum(*g, queries, opt, false, &sink, nullptr).ok());
  EXPECT_EQ(sink.counts()[0], 0u);
  EXPECT_EQ(sink.counts()[1], 1u);
  EXPECT_EQ(sink.counts()[2], 0u);
}

TEST(BatchEnum, MaxPathsPerQueryFailsCleanly) {
  auto g = GenerateComplete(10);
  std::vector<PathQuery> queries = {{0, 9, 5}};
  BatchOptions opt;
  opt.max_paths_per_query = 10;
  CountingSink sink(1);
  Status st = RunBatchEnum(*g, queries, opt, false, &sink, nullptr);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

TEST(BatchEnum, CacheCapFailsCleanly) {
  Graph g = PaperFigure1Graph();
  std::vector<PathQuery> queries(4, PathQuery{0, 11, 5});
  BatchOptions opt;
  opt.max_cache_vertices = 2;  // absurdly small
  CountingSink sink(4);
  Status st = RunBatchEnum(g, queries, opt, false, &sink, nullptr);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

TEST(BatchEnum, PhaseTimersAreFilled) {
  Graph g = PaperFigure1Graph();
  auto queries = PaperFigure1Queries();
  BatchStats stats;
  CountingSink sink(queries.size());
  BatchOptions opt;
  ASSERT_TRUE(RunBatchEnum(g, queries, opt, false, &sink, &stats).ok());
  EXPECT_GT(stats.total_seconds, 0.0);
  EXPECT_GE(stats.build_index_seconds, 0.0);
  EXPECT_GT(stats.num_clusters, 0u);
  EXPECT_EQ(stats.paths_emitted, 3u + 3 + 1 + 2 + 2);
}

}  // namespace
}  // namespace hcpath
