#include "util/flags.h"

#include <gtest/gtest.h>

#include <vector>

namespace hcpath {
namespace {

std::vector<char*> MakeArgv(std::vector<std::string>& storage) {
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>("prog"));
  for (auto& s : storage) argv.push_back(s.data());
  return argv;
}

TEST(Flags, ParsesAllTypes) {
  FlagSet flags;
  int64_t* n = flags.AddInt64("n", 10, "count");
  double* gamma = flags.AddDouble("gamma", 0.5, "threshold");
  bool* verbose = flags.AddBool("verbose", false, "verbosity");
  std::string* name = flags.AddString("name", "EP", "dataset");

  std::vector<std::string> args = {"--n=42", "--gamma", "0.9", "--verbose",
                                   "--name=FS"};
  auto argv = MakeArgv(args);
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(*n, 42);
  EXPECT_DOUBLE_EQ(*gamma, 0.9);
  EXPECT_TRUE(*verbose);
  EXPECT_EQ(*name, "FS");
}

TEST(Flags, DefaultsWhenUnset) {
  FlagSet flags;
  int64_t* n = flags.AddInt64("n", 7, "count");
  std::vector<std::string> args;
  auto argv = MakeArgv(args);
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(*n, 7);
}

TEST(Flags, UnknownFlagFails) {
  FlagSet flags;
  flags.AddInt64("n", 1, "");
  std::vector<std::string> args = {"--bogus=1"};
  auto argv = MakeArgv(args);
  EXPECT_FALSE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
}

TEST(Flags, BadValueFails) {
  FlagSet flags;
  flags.AddInt64("n", 1, "");
  std::vector<std::string> args = {"--n=notanumber"};
  auto argv = MakeArgv(args);
  EXPECT_FALSE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
}

TEST(Flags, ExplicitBoolValues) {
  FlagSet flags;
  bool* b = flags.AddBool("b", true, "");
  std::vector<std::string> args = {"--b=false"};
  auto argv = MakeArgv(args);
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_FALSE(*b);
}

TEST(Flags, MissingValueFails) {
  FlagSet flags;
  flags.AddInt64("n", 1, "");
  std::vector<std::string> args = {"--n"};
  auto argv = MakeArgv(args);
  EXPECT_FALSE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
}

TEST(Flags, PositionalArgumentRejected) {
  FlagSet flags;
  std::vector<std::string> args = {"stray"};
  auto argv = MakeArgv(args);
  EXPECT_FALSE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
}

TEST(Flags, UsageListsFlags) {
  FlagSet flags;
  flags.AddInt64("queries", 100, "number of queries");
  std::string usage = flags.Usage();
  EXPECT_NE(usage.find("--queries"), std::string::npos);
  EXPECT_NE(usage.find("number of queries"), std::string::npos);
}

}  // namespace
}  // namespace hcpath
