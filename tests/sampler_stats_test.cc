#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "graph/sampler.h"
#include "graph/stats.h"

namespace hcpath {
namespace {

TEST(Sampler, VertexSampleKeepsRoughFraction) {
  Rng grng(1);
  auto g = GenerateErdosRenyi(2000, 10000, grng);
  Rng rng(2);
  auto sampled = SampleVerticesInduced(*g, 0.5, rng);
  ASSERT_TRUE(sampled.ok()) << sampled.status();
  EXPECT_NEAR(static_cast<double>(sampled->graph.NumVertices()), 1000.0,
              100.0);
  // Induced edges survive only when both endpoints survive: about 25%.
  EXPECT_LT(sampled->graph.NumEdges(), 4000u);
}

TEST(Sampler, MappingIsConsistent) {
  Rng grng(3);
  auto g = GenerateErdosRenyi(200, 2000, grng);
  Rng rng(4);
  auto sampled = SampleVerticesInduced(*g, 0.7, rng);
  ASSERT_TRUE(sampled.ok());
  // Every sampled edge must exist in the original under the mapping.
  for (auto [u, v] : sampled->graph.Edges()) {
    VertexId ou = sampled->new_to_old[u];
    VertexId ov = sampled->new_to_old[v];
    EXPECT_TRUE(g->HasEdge(ou, ov));
    EXPECT_EQ(sampled->old_to_new[ou], u);
  }
}

TEST(Sampler, FullFractionKeepsEverything) {
  Rng grng(5);
  auto g = GenerateErdosRenyi(100, 500, grng);
  Rng rng(6);
  auto sampled = SampleVerticesInduced(*g, 1.0, rng);
  ASSERT_TRUE(sampled.ok());
  EXPECT_EQ(sampled->graph.NumVertices(), g->NumVertices());
  EXPECT_EQ(sampled->graph.NumEdges(), g->NumEdges());
}

TEST(Sampler, RejectsBadFraction) {
  Rng grng(7);
  auto g = GenerateErdosRenyi(50, 100, grng);
  Rng rng(8);
  EXPECT_FALSE(SampleVerticesInduced(*g, 0.0, rng).ok());
  EXPECT_FALSE(SampleVerticesInduced(*g, 1.5, rng).ok());
  EXPECT_FALSE(SampleEdges(*g, -0.1, rng).ok());
}

TEST(Sampler, EdgeSampleKeepsVertexSet) {
  Rng grng(9);
  auto g = GenerateErdosRenyi(100, 1000, grng);
  Rng rng(10);
  auto sampled = SampleEdges(*g, 0.3, rng);
  ASSERT_TRUE(sampled.ok());
  EXPECT_EQ(sampled->NumVertices(), g->NumVertices());
  EXPECT_NEAR(static_cast<double>(sampled->NumEdges()), 300.0, 70.0);
}

TEST(GraphStats, MatchesHandComputedValues) {
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 2);
  Graph g = *b.Build();
  GraphStats s = ComputeGraphStats(g);
  EXPECT_EQ(s.num_vertices, 4u);
  EXPECT_EQ(s.num_edges, 3u);
  EXPECT_DOUBLE_EQ(s.avg_degree, 0.75);
  EXPECT_EQ(s.max_out_degree, 2u);
  EXPECT_EQ(s.max_in_degree, 2u);
  EXPECT_EQ(s.max_total_degree, 2u);  // every touched vertex has in+out = 2
  EXPECT_EQ(s.num_isolated, 1u);      // vertex 3
}

TEST(GraphStats, DegreeHistogram) {
  GraphBuilder b(5);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 2);
  Graph g = *b.Build();
  auto hist = OutDegreeHistogram(g, 3);
  // deg 0: vertices 2,3,4 -> 3; deg 1: vertex 1; deg >= 2 tail: vertex 0.
  EXPECT_EQ(hist[0], 3u);
  EXPECT_EQ(hist[1], 1u);
  EXPECT_EQ(hist[2], 1u);
}

TEST(GraphStats, FormatRowContainsName) {
  GraphStats s;
  s.num_vertices = 75000;
  s.num_edges = 500000;
  std::string row = FormatStatsRow("EP", s);
  EXPECT_NE(row.find("EP"), std::string::npos);
  EXPECT_NE(row.find("75,000"), std::string::npos);
}

}  // namespace
}  // namespace hcpath
