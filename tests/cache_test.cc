#include "core/cache.h"

#include <gtest/gtest.h>

namespace hcpath {
namespace {

PathSet MakePaths(int n) {
  PathSet ps;
  for (int i = 0; i < n; ++i) {
    ps.Add(std::vector<VertexId>{static_cast<VertexId>(i),
                                 static_cast<VertexId>(i + 1)});
  }
  return ps;
}

TEST(ResultCache, PutGetRelease) {
  ResultCache cache;
  cache.Init({2, 1}, 0);
  ASSERT_TRUE(cache.Put(0, MakePaths(3)).ok());
  EXPECT_TRUE(cache.Contains(0));
  EXPECT_EQ(cache.Get(0).size(), 3u);
  cache.Release(0);
  EXPECT_TRUE(cache.Contains(0));  // one consumer left
  cache.Release(0);
  EXPECT_FALSE(cache.Contains(0));  // evicted at zero
}

TEST(ResultCache, ZeroRefcountDropsImmediately) {
  ResultCache cache;
  cache.Init({0}, 0);
  ASSERT_TRUE(cache.Put(0, MakePaths(5)).ok());
  EXPECT_FALSE(cache.Contains(0));
  EXPECT_EQ(cache.current_vertices(), 0u);
}

TEST(ResultCache, TracksVertexAccounting) {
  ResultCache cache;
  cache.Init({1, 1}, 0);
  ASSERT_TRUE(cache.Put(0, MakePaths(4)).ok());  // 8 vertices
  EXPECT_EQ(cache.current_vertices(), 8u);
  ASSERT_TRUE(cache.Put(1, MakePaths(2)).ok());  // +4
  EXPECT_EQ(cache.current_vertices(), 12u);
  EXPECT_EQ(cache.peak_vertices(), 12u);
  cache.Release(0);
  EXPECT_EQ(cache.current_vertices(), 4u);
  EXPECT_EQ(cache.peak_vertices(), 12u);  // peak sticks
  EXPECT_EQ(cache.total_paths_cached(), 6u);
}

TEST(ResultCache, CapacityEnforced) {
  ResultCache cache;
  cache.Init({1, 1}, /*max_vertices=*/10);
  ASSERT_TRUE(cache.Put(0, MakePaths(4)).ok());  // 8 vertices
  Status st = cache.Put(1, MakePaths(4));        // would be 16 > 10
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

TEST(ResultCache, EvictionFreesCapacity) {
  ResultCache cache;
  cache.Init({1, 1}, 10);
  ASSERT_TRUE(cache.Put(0, MakePaths(4)).ok());
  cache.Release(0);
  ASSERT_TRUE(cache.Put(1, MakePaths(4)).ok());  // fits after eviction
}

TEST(ResultCache, DrainedReflectsOutstandingRefs) {
  ResultCache cache;
  cache.Init({1, 2}, 0);
  EXPECT_FALSE(cache.Drained());
  cache.Release(0);
  cache.Release(1);
  EXPECT_FALSE(cache.Drained());
  cache.Release(1);
  EXPECT_TRUE(cache.Drained());
}

}  // namespace
}  // namespace hcpath
