#include "util/stringx.h"

#include <gtest/gtest.h>

namespace hcpath {
namespace {

TEST(Split, BasicAndEmptyFields) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
  auto kept = Split("a,b,,c", ',', /*keep_empty=*/true);
  ASSERT_EQ(kept.size(), 4u);
  EXPECT_EQ(kept[2], "");
}

TEST(Split, NoSeparator) {
  auto parts = Split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(Split, EmptyString) {
  EXPECT_TRUE(Split("", ',').empty());
  EXPECT_EQ(Split("", ',', true).size(), 1u);
}

TEST(Join, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(Trim, StripsWhitespace) {
  EXPECT_EQ(Trim("  x y \t\n"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("abc"), "abc");
}

TEST(StartsEndsWith, Basic) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("ar", "bar"));
}

TEST(ParseInt64, ValidAndInvalid) {
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_EQ(*ParseInt64("-7"), -7);
  EXPECT_EQ(*ParseInt64("  13  "), 13);
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12abc").ok());
  EXPECT_FALSE(ParseInt64("99999999999999999999999").ok());
}

TEST(ParseUint64, RejectsNegative) {
  EXPECT_EQ(*ParseUint64("18446744073709551615"), UINT64_MAX);
  EXPECT_FALSE(ParseUint64("-1").ok());
}

TEST(ParseDouble, ValidAndInvalid) {
  EXPECT_DOUBLE_EQ(*ParseDouble("0.5"), 0.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_FALSE(ParseDouble("1.2.3").ok());
  EXPECT_FALSE(ParseDouble("").ok());
}

TEST(FormatWithCommas, GroupsDigits) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(1234567), "1,234,567");
  EXPECT_EQ(FormatWithCommas(1468365182), "1,468,365,182");
}

TEST(FormatBytes, PicksUnit) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2048), "2.0 KiB");
  EXPECT_EQ(FormatBytes(3u << 20), "3.0 MiB");
}

}  // namespace
}  // namespace hcpath
