// PathEngine service-layer tests: admission cuts, per-query futures and
// sinks, error isolation, and the headline determinism property — N
// consecutive micro-batches through one long-lived engine (warm distance
// cache, recycled BatchContext) are byte-identical to N one-shot
// RunBatchEnum calls, at 1 and 4 threads.

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/batch_enum.h"
#include "core/brute_force.h"
#include "graph/generators.h"
#include "service/path_engine.h"
#include "test_graphs.h"
#include "util/rng.h"

namespace hcpath {
namespace {

class RecordingSink : public PathSink {
 public:
  using Event = std::pair<size_t, std::vector<VertexId>>;
  void OnPath(size_t qi, PathView p) override {
    events_.emplace_back(qi, std::vector<VertexId>(p.begin(), p.end()));
  }
  const std::vector<Event>& events() const { return events_; }

 private:
  std::vector<Event> events_;
};

PathEngineOptions UntimedOptions(int threads = 1) {
  PathEngineOptions opt;
  opt.batch.num_threads = threads;
  opt.max_wait_seconds = 0;  // deterministic: cuts on size/Flush only
  opt.max_batch_size = 1024;
  return opt;
}

TEST(PathEngine, InvalidOptionsFailConstruction) {
  const Graph g = PaperFigure1Graph();
  PathEngineOptions opt;
  opt.batch.gamma = 2.0;
  PathEngine engine(g, opt);
  EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);
  auto future = engine.Submit({0, 11, 5});
  EXPECT_EQ(future.get().status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.RunBatch({{0, 11, 5}}, nullptr).code(),
            StatusCode::kInvalidArgument);
}

TEST(PathEngine, SubmitFlushMatchesBruteForce) {
  const Graph g = PaperFigure1Graph();
  const std::vector<PathQuery> queries = PaperFigure1Queries();
  PathEngine engine(g, UntimedOptions());
  ASSERT_TRUE(engine.status().ok());

  std::vector<std::future<QueryResult>> futures;
  for (const PathQuery& q : queries) futures.push_back(engine.Submit(q));
  engine.Flush();

  for (size_t i = 0; i < queries.size(); ++i) {
    QueryResult r = futures[i].get();
    ASSERT_TRUE(r.status.ok()) << r.status;
    auto oracle = BruteForcePaths(g, queries[i]);
    ASSERT_TRUE(oracle.ok());
    EXPECT_EQ(r.path_count, oracle->size()) << queries[i].ToString();
    ASSERT_EQ(r.paths.size(), oracle->size());
    EXPECT_EQ(r.paths.ToSortedVectors(), oracle->ToSortedVectors());
  }
  PathEngineStats stats = engine.GetStats();
  EXPECT_EQ(stats.queries_submitted, queries.size());
  EXPECT_EQ(stats.queries_completed, queries.size());
  EXPECT_EQ(stats.batches_run, 1u);
  EXPECT_EQ(stats.flush_cuts, 1u);
}

TEST(PathEngine, SizeCutDispatchesWithoutFlush) {
  const Graph g = PaperFigure1Graph();
  PathEngineOptions opt = UntimedOptions();
  opt.max_batch_size = 2;
  PathEngine engine(g, opt);

  auto f1 = engine.Submit({0, 11, 5});
  auto f2 = engine.Submit({2, 13, 5});  // second query reaches the cut
  EXPECT_TRUE(f1.get().status.ok());
  EXPECT_TRUE(f2.get().status.ok());
  PathEngineStats stats = engine.GetStats();
  EXPECT_EQ(stats.batches_run, 1u);
  EXPECT_EQ(stats.size_cuts, 1u);

  // 5 more queries at window 2 -> two size cuts + one drain cut at
  // shutdown or flush.
  std::vector<std::future<QueryResult>> futures;
  for (const PathQuery& q : PaperFigure1Queries()) {
    futures.push_back(engine.Submit(q));
  }
  engine.Flush();
  for (auto& f : futures) EXPECT_TRUE(f.get().status.ok());
  stats = engine.GetStats();
  EXPECT_EQ(stats.batches_run, 4u);
  EXPECT_EQ(stats.size_cuts, 3u);
}

TEST(PathEngine, WaitCutFiresWithoutSizeOrFlush) {
  const Graph g = PaperFigure1Graph();
  PathEngineOptions opt;
  opt.max_batch_size = 1024;       // never reached
  opt.max_wait_seconds = 0.001;    // cut on the timer
  PathEngine engine(g, opt);
  auto future = engine.Submit({0, 11, 5});
  QueryResult r = future.get();  // resolves only if the timer cut fires
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.path_count, 3u);
  EXPECT_GE(engine.GetStats().wait_cuts, 1u);
}

TEST(PathEngine, InvalidQueryRejectedAloneAtAdmission) {
  const Graph g = PaperFigure1Graph();
  PathEngine engine(g, UntimedOptions());
  auto good_before = engine.Submit({0, 11, 5});
  auto bad = engine.Submit({3, 3, 4});  // s == t
  auto good_after = engine.Submit({2, 13, 5});
  engine.Flush();

  EXPECT_EQ(bad.get().status.code(), StatusCode::kInvalidArgument);
  // The poisoned query never entered the batch: its neighbors succeed.
  EXPECT_TRUE(good_before.get().status.ok());
  QueryResult after = good_after.get();
  EXPECT_TRUE(after.status.ok());
  EXPECT_EQ(after.path_count, 3u);
  PathEngineStats stats = engine.GetStats();
  EXPECT_EQ(stats.queries_rejected, 1u);
  EXPECT_EQ(stats.queries_completed, 2u);
}

TEST(PathEngine, PerQuerySinkReceivesOnlyItsPaths) {
  const Graph g = PaperFigure1Graph();
  const std::vector<PathQuery> queries = PaperFigure1Queries();
  PathEngine engine(g, UntimedOptions());

  std::vector<RecordingSink> sinks(queries.size());
  std::vector<std::future<QueryResult>> futures;
  for (size_t i = 0; i < queries.size(); ++i) {
    futures.push_back(engine.Submit(queries[i], &sinks[i]));
  }
  engine.Flush();
  for (size_t i = 0; i < queries.size(); ++i) {
    QueryResult r = futures[i].get();
    ASSERT_TRUE(r.status.ok());
    EXPECT_EQ(r.paths.size(), 0u);  // streamed, not collected
    EXPECT_EQ(sinks[i].events().size(), r.path_count);
    for (const auto& e : sinks[i].events()) EXPECT_EQ(e.first, i);
  }
}

TEST(PathEngine, DestructorDrainsPendingQueries) {
  const Graph g = PaperFigure1Graph();
  std::vector<std::future<QueryResult>> futures;
  {
    PathEngine engine(g, UntimedOptions());
    for (const PathQuery& q : PaperFigure1Queries()) {
      futures.push_back(engine.Submit(q));
    }
    // No Flush: shutdown must act as the final cut.
  }
  for (auto& f : futures) EXPECT_TRUE(f.get().status.ok());
}

TEST(PathEngine, DrainBlocksUntilIdle) {
  const Graph g = PaperFigure1Graph();
  PathEngine engine(g, UntimedOptions());
  std::vector<std::future<QueryResult>> futures;
  for (const PathQuery& q : PaperFigure1Queries()) {
    futures.push_back(engine.Submit(q));
  }
  engine.Flush();
  engine.Drain();
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
  }
}

TEST(PathEngine, RunBatchSharesContextAndCache) {
  const Graph g = PaperFigure1Graph();
  const std::vector<PathQuery> queries = PaperFigure1Queries();
  PathEngine engine(g, UntimedOptions());

  RecordingSink first, second;
  BatchStats stats1, stats2;
  ASSERT_TRUE(engine.RunBatch(queries, &first, &stats1).ok());
  ASSERT_TRUE(engine.RunBatch(queries, &second, &stats2).ok());
  EXPECT_EQ(first.events(), second.events());
  // Batch 1 is cold, batch 2 is fully served by the distance cache.
  EXPECT_EQ(stats1.distance_cache_hits, 0u);
  EXPECT_GT(stats1.distance_cache_misses, 0u);
  EXPECT_GT(stats2.distance_cache_hits, 0u);
  EXPECT_EQ(stats2.distance_cache_misses, 0u);

  // One-shot reference: identical stream.
  RecordingSink oneshot;
  BatchOptions opt = engine.options().batch;
  ASSERT_TRUE(RunBatchEnum(g, queries, opt, /*optimized_order=*/true,
                           &oneshot, nullptr)
                  .ok());
  EXPECT_EQ(first.events(), oneshot.events());
}

TEST(PathEngine, InvalidateDistanceCacheForcesMisses) {
  const Graph g = PaperFigure1Graph();
  const std::vector<PathQuery> queries = PaperFigure1Queries();
  PathEngine engine(g, UntimedOptions());
  ASSERT_TRUE(engine.RunBatch(queries, nullptr).ok());
  engine.InvalidateDistanceCache();
  BatchStats stats;
  ASSERT_TRUE(engine.RunBatch(queries, nullptr, &stats).ok());
  EXPECT_EQ(stats.distance_cache_hits, 0u);
  EXPECT_GT(stats.distance_cache_misses, 0u);
}

TEST(PathEngine, DisabledCacheStillServes) {
  const Graph g = PaperFigure1Graph();
  PathEngineOptions opt = UntimedOptions();
  opt.enable_distance_cache = false;
  PathEngine engine(g, opt);
  EXPECT_EQ(engine.distance_cache(), nullptr);
  BatchStats stats;
  ASSERT_TRUE(engine.RunBatch(PaperFigure1Queries(), nullptr, &stats).ok());
  ASSERT_TRUE(engine.RunBatch(PaperFigure1Queries(), nullptr, &stats).ok());
  EXPECT_EQ(stats.distance_cache_hits, 0u);
  EXPECT_EQ(stats.distance_cache_misses, 0u);
}

/// Regression for the concurrent-Flush-during-Submit-at-capacity race:
/// the queue budget (2) is far below the batch window (1024) in untimed
/// mode, so ONLY Flush can cut — producers block at capacity while the
/// main thread flushes concurrently. Every submit must eventually be
/// admitted and completed; no deadlock, no lost query (wall clock, real
/// threads — runs under the tsan label).
TEST(PathEngine, ConcurrentFlushReleasesSubmitsBlockedAtCapacity) {
  const Graph g = PaperFigure1Graph();
  PathEngineOptions opt = UntimedOptions();
  opt.max_batch_size = 1024;
  opt.admission.max_queued_queries = 2;
  opt.admission.backpressure = AdmissionBackpressure::kBlock;
  // low == high == 1.0: shedding disabled (nothing is ever above the
  // low-watermark target), so blocking is the only overload response.
  opt.admission.shed_high_watermark = 1.0;
  opt.admission.shed_low_watermark = 1.0;
  PathEngine engine(g, opt);
  ASSERT_TRUE(engine.status().ok());

  const std::vector<PathQuery> queries = PaperFigure1Queries();
  constexpr int kProducers = 3;
  constexpr int kPerProducer = 4;
  std::vector<std::vector<std::future<QueryResult>>> futures(kProducers);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        futures[p].push_back(
            engine.Submit("p" + std::to_string(p),
                          queries[(p + i) % queries.size()]));
      }
    });
  }
  // Flush concurrently until everything submitted made it through.
  while (engine.GetStats().queries_completed <
         static_cast<uint64_t>(kProducers * kPerProducer)) {
    engine.Flush();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (auto& t : producers) t.join();
  for (auto& fs : futures) {
    for (auto& f : fs) {
      QueryResult r = f.get();
      EXPECT_TRUE(r.status.ok()) << r.status;
    }
  }
  PathEngineStats stats = engine.GetStats();
  EXPECT_EQ(stats.queries_completed,
            static_cast<uint64_t>(kProducers * kPerProducer));
  EXPECT_EQ(stats.queries_shed, 0u);
  EXPECT_LE(stats.peak_queued_queries, 2u);
}

/// Regression for the shutdown-with-queued-tenants race: at destruction,
/// already-admitted queries are drained and complete OK while submits
/// still blocked on queue space wake and fail with FailedPrecondition —
/// nobody deadlocks, no future is abandoned.
TEST(PathEngine, ShutdownDrainsQueuedTenantsAndFailsBlockedSubmitters) {
  const Graph g = PaperFigure1Graph();
  std::vector<std::future<QueryResult>> admitted;
  std::vector<std::future<QueryResult>> blocked(3);
  std::vector<std::thread> submitters;
  {
    PathEngineOptions opt = UntimedOptions();
    opt.max_batch_size = 1024;  // only shutdown's final flush can cut
    opt.admission.max_queued_queries = 2;
    opt.admission.backpressure = AdmissionBackpressure::kBlock;
    opt.admission.shed_high_watermark = 1.0;
    opt.admission.shed_low_watermark = 1.0;
    PathEngine engine(g, opt);
    ASSERT_TRUE(engine.status().ok());

    admitted.push_back(engine.Submit("queued", PathQuery{0, 11, 5}));
    admitted.push_back(engine.Submit("queued", PathQuery{2, 13, 5}));
    for (int i = 0; i < 3; ++i) {
      submitters.emplace_back([&, i] {
        blocked[i] =
            engine.Submit("t" + std::to_string(i), PathQuery{4, 14, 4});
      });
    }
    while (engine.GetStats().backpressure_blocks < 3) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // Destruction: drain the two queued, fail the three blocked.
  }
  for (auto& t : submitters) t.join();
  for (auto& f : admitted) {
    QueryResult r = f.get();
    EXPECT_TRUE(r.status.ok()) << r.status;
    EXPECT_EQ(r.path_count, 3u);
  }
  for (auto& f : blocked) {
    QueryResult r = f.get();
    EXPECT_EQ(r.status.code(), StatusCode::kFailedPrecondition) << r.status;
  }
}

/// The acceptance-criteria property: N consecutive micro-batches through
/// one engine — second pass warm — equal N one-shot RunBatchEnum calls,
/// stream for stream, count for count, at 1 and 4 threads.
TEST(PathEngine, WarmEngineByteIdenticalToOneShot) {
  Rng rng(2024);
  const Graph g = *GenerateSmallWorld(600, 5, 0.08, rng);

  // A skewed stream: a few hot endpoints repeated across micro-batches.
  Rng qrng(99);
  std::vector<std::vector<PathQuery>> batches;
  std::vector<PathQuery> hot = {{1, 40, 4}, {7, 90, 5}, {13, 150, 4}};
  for (int b = 0; b < 6; ++b) {
    std::vector<PathQuery> batch;
    for (int i = 0; i < 8; ++i) {
      if (qrng.NextBounded(2) == 0) {
        batch.push_back(hot[qrng.NextBounded(hot.size())]);
      } else {
        VertexId s = static_cast<VertexId>(qrng.NextBounded(600));
        VertexId t = static_cast<VertexId>(qrng.NextBounded(600));
        if (s == t) t = (t + 1) % 600;
        batch.push_back({s, t, 3 + static_cast<int>(qrng.NextBounded(3))});
      }
    }
    batches.push_back(std::move(batch));
  }

  for (int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    PathEngineOptions opt = UntimedOptions(threads);
    PathEngine engine(g, opt);
    uint64_t warm_hits = 0;
    for (const auto& batch : batches) {
      // Engine path (shared sink preserves the batch's global emission
      // order for comparison).
      RecordingSink engine_sink;
      std::vector<std::future<QueryResult>> futures;
      for (const PathQuery& q : batch) {
        futures.push_back(engine.Submit(q, &engine_sink));
      }
      engine.Flush();
      engine.Drain();
      for (auto& f : futures) ASSERT_TRUE(f.get().status.ok());

      // One-shot reference on a fresh context, sequential-equivalent
      // options.
      RecordingSink oneshot_sink;
      BatchStats oneshot_stats;
      BatchOptions ref = opt.batch;
      ASSERT_TRUE(RunBatchEnum(g, batch, ref, /*optimized_order=*/true,
                               &oneshot_sink, &oneshot_stats)
                      .ok());
      ASSERT_EQ(engine_sink.events(), oneshot_sink.events());
      warm_hits = engine.GetStats().distance_cache_hits;
    }
    // The hot endpoints repeat, so a warm engine must have served some
    // builds from the cache while matching the one-shot streams above.
    EXPECT_GT(warm_hits, 0u);
  }
}

}  // namespace
}  // namespace hcpath
