#include "core/path.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace hcpath {
namespace {

TEST(PathHelpers, IsSimplePath) {
  std::vector<VertexId> simple = {0, 1, 2, 3};
  std::vector<VertexId> cyclic = {0, 1, 2, 0};
  EXPECT_TRUE(IsSimplePath(simple));
  EXPECT_FALSE(IsSimplePath(cyclic));
  EXPECT_TRUE(IsSimplePath(std::vector<VertexId>{5}));
}

TEST(PathHelpers, PathExistsInGraph) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  Graph g = *b.Build();
  EXPECT_TRUE(PathExistsInGraph(g, std::vector<VertexId>{0, 1, 2}));
  EXPECT_FALSE(PathExistsInGraph(g, std::vector<VertexId>{0, 2}));
  EXPECT_FALSE(PathExistsInGraph(g, std::vector<VertexId>{0, 9}));
  EXPECT_FALSE(PathExistsInGraph(g, std::vector<VertexId>{}));
}

TEST(PathHelpers, ToStringFormat) {
  std::vector<VertexId> p = {0, 4, 9};
  EXPECT_EQ(PathToString(p), "(v0, v4, v9)");
}

TEST(PathSet, AddAndAccess) {
  PathSet ps;
  EXPECT_TRUE(ps.empty());
  ps.Add(std::vector<VertexId>{1, 2, 3});
  ps.Add(std::vector<VertexId>{7});
  ASSERT_EQ(ps.size(), 2u);
  EXPECT_EQ(ps.Length(0), 2u);
  EXPECT_EQ(ps.Length(1), 0u);
  EXPECT_EQ(ps.Head(0), 1u);
  EXPECT_EQ(ps.Tail(0), 3u);
  EXPECT_EQ(ps[1][0], 7u);
}

TEST(PathSet, AddConcatJoinsWithoutCopy) {
  PathSet ps;
  std::vector<VertexId> prefix = {1, 2};
  std::vector<VertexId> suffix = {3, 4};
  ps.AddConcat(prefix, suffix);
  ASSERT_EQ(ps.size(), 1u);
  PathView p = ps[0];
  EXPECT_EQ(std::vector<VertexId>(p.begin(), p.end()),
            (std::vector<VertexId>{1, 2, 3, 4}));
}

TEST(PathSet, ClearResets) {
  PathSet ps;
  ps.Add(std::vector<VertexId>{1, 2});
  ps.Clear();
  EXPECT_TRUE(ps.empty());
  EXPECT_EQ(ps.TotalVertices(), 0u);
}

TEST(PathSet, FingerprintOrderInsensitive) {
  PathSet a, b;
  a.Add(std::vector<VertexId>{1, 2});
  a.Add(std::vector<VertexId>{3, 4, 5});
  b.Add(std::vector<VertexId>{3, 4, 5});
  b.Add(std::vector<VertexId>{1, 2});
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
}

TEST(PathSet, FingerprintDetectsDifference) {
  PathSet a, b;
  a.Add(std::vector<VertexId>{1, 2});
  b.Add(std::vector<VertexId>{2, 1});
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
  PathSet c;
  c.Add(std::vector<VertexId>{1, 2});
  c.Add(std::vector<VertexId>{1, 2});
  EXPECT_NE(a.Fingerprint(), c.Fingerprint());  // multiset-sensitive
}

TEST(PathSet, ToSortedVectorsCanonicalizes) {
  PathSet ps;
  ps.Add(std::vector<VertexId>{5, 6});
  ps.Add(std::vector<VertexId>{1, 2, 3});
  auto sorted = ps.ToSortedVectors();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0], (std::vector<VertexId>{1, 2, 3}));
  EXPECT_EQ(sorted[1], (std::vector<VertexId>{5, 6}));
}

TEST(Sinks, CountingSinkCounts) {
  CountingSink sink(3);
  std::vector<VertexId> p = {0, 1};
  sink.OnPath(0, p);
  sink.OnPath(0, p);
  sink.OnPath(2, p);
  EXPECT_EQ(sink.counts()[0], 2u);
  EXPECT_EQ(sink.counts()[1], 0u);
  EXPECT_EQ(sink.counts()[2], 1u);
  EXPECT_EQ(sink.Total(), 3u);
}

TEST(Sinks, CollectingSinkMaterializes) {
  CollectingSink sink(2);
  std::vector<VertexId> p = {0, 1, 2};
  sink.OnPath(1, p);
  EXPECT_TRUE(sink.paths(0).empty());
  ASSERT_EQ(sink.paths(1).size(), 1u);
  EXPECT_EQ(sink.paths(1).Tail(0), 2u);
}

}  // namespace
}  // namespace hcpath
