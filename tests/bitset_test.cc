#include "util/bitset.h"

#include <gtest/gtest.h>

#include <vector>

namespace hcpath {
namespace {

TEST(DynamicBitset, SetTestClear) {
  DynamicBitset bs(130);
  EXPECT_EQ(bs.size(), 130u);
  EXPECT_FALSE(bs.Test(0));
  bs.Set(0);
  bs.Set(64);
  bs.Set(129);
  EXPECT_TRUE(bs.Test(0));
  EXPECT_TRUE(bs.Test(64));
  EXPECT_TRUE(bs.Test(129));
  EXPECT_FALSE(bs.Test(1));
  bs.Clear(64);
  EXPECT_FALSE(bs.Test(64));
}

TEST(DynamicBitset, TestAndSet) {
  DynamicBitset bs(10);
  EXPECT_TRUE(bs.TestAndSet(3));
  EXPECT_FALSE(bs.TestAndSet(3));
  EXPECT_TRUE(bs.Test(3));
}

TEST(DynamicBitset, CountAndAny) {
  DynamicBitset bs(200);
  EXPECT_EQ(bs.Count(), 0u);
  EXPECT_FALSE(bs.Any());
  for (size_t i = 0; i < 200; i += 7) bs.Set(i);
  EXPECT_EQ(bs.Count(), 29u);
  EXPECT_TRUE(bs.Any());
  bs.Reset();
  EXPECT_EQ(bs.Count(), 0u);
}

TEST(DynamicBitset, ForEachSetBitAscending) {
  DynamicBitset bs(300);
  std::vector<size_t> expected = {0, 63, 64, 65, 128, 299};
  for (size_t i : expected) bs.Set(i);
  std::vector<size_t> seen;
  bs.ForEachSetBit([&](size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, expected);
}

TEST(DynamicBitset, UnionAndIntersect) {
  DynamicBitset a(100), b(100);
  a.Set(1);
  a.Set(50);
  b.Set(50);
  b.Set(99);
  DynamicBitset u = a;
  u.UnionWith(b);
  EXPECT_TRUE(u.Test(1));
  EXPECT_TRUE(u.Test(50));
  EXPECT_TRUE(u.Test(99));
  DynamicBitset i = a;
  i.IntersectWith(b);
  EXPECT_FALSE(i.Test(1));
  EXPECT_TRUE(i.Test(50));
  EXPECT_FALSE(i.Test(99));
}

TEST(DynamicBitset, ResizeClears) {
  DynamicBitset bs(64);
  bs.Set(10);
  bs.Resize(128);
  EXPECT_FALSE(bs.Test(10));
  EXPECT_EQ(bs.size(), 128u);
}

}  // namespace
}  // namespace hcpath
