// The streaming ordered merge (core/parallel_merge.h): results must reach
// the sink as soon as the lowest-indexed unfinished item completes (not
// after the whole batch), peak buffered-arena bytes must track the
// undrained window instead of the batch, and the emitted stream must stay
// byte-identical to num_threads = 1 — including on fully skewed batches
// that exercise the intra-cluster parallelism. Runs under `ctest -L tsan`.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "core/batch_enum.h"
#include "core/parallel_merge.h"
#include "graph/graph_builder.h"
#include "test_graphs.h"

namespace hcpath {
namespace {

/// Thread-safe path counter for observing the sink *while* the parallel
/// section is still running (the drain serializes OnPath calls but they
/// arrive on pool threads).
class AtomicCountSink : public PathSink {
 public:
  void OnPath(size_t, PathView) override {
    count_.fetch_add(1, std::memory_order_release);
  }
  uint64_t count() const { return count_.load(std::memory_order_acquire); }

 private:
  std::atomic<uint64_t> count_{0};
};

/// Records the full (query_index, path) emission sequence; read only after
/// the run completes.
class RecordingSink : public PathSink {
 public:
  using Event = std::pair<size_t, std::vector<VertexId>>;
  void OnPath(size_t qi, PathView p) override {
    events_.emplace_back(qi, std::vector<VertexId>(p.begin(), p.end()));
  }
  const std::vector<Event>& events() const { return events_; }

 private:
  std::vector<Event> events_;
};

bool WaitUntil(const std::function<bool()>& pred, int seconds = 60) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::yield();
  }
  return true;
}

void EmitPaths(PathSink* sink, size_t query_index, size_t n) {
  for (size_t p = 0; p < n; ++p) {
    const VertexId v = static_cast<VertexId>(p);
    std::vector<VertexId> path = {v, v + 1, v + 2, v + 3,
                                  v + 4, v + 5, v + 6, v + 7};
    sink->OnPath(query_index, PathView{path.data(), path.size()});
  }
}

// The defining streaming property: the sink observes item 0's output while
// the last item is still running. The last task *blocks* until the sink
// has seen something, so a gather-then-merge implementation (which emits
// nothing before every task finishes) would time out here.
TEST(StreamingMerge, SinkObservesPrefixBeforeLastItemFinishes) {
  ThreadPool pool(2);
  AtomicCountSink sink;
  std::atomic<bool> observed_early{false};
  MergeMetrics mm;
  const size_t n = 4;
  Status st = RunBufferedParallel(
      pool, n, &sink, nullptr,
      [&](size_t i, PathSink* buf, BatchStats*) {
        if (i == n - 1) {
          // Item 0 is claimed (in index order) before this item; under
          // streaming its paths drain as soon as it completes.
          observed_early.store(WaitUntil([&] { return sink.count() > 0; }));
        }
        EmitPaths(buf, i, 4);
        return Status::OK();
      },
      &mm);
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_TRUE(observed_early.load())
      << "sink saw nothing before the last item finished: merge is "
         "gather-then-merge, not streaming";
  EXPECT_EQ(sink.count(), 4 * n);
  EXPECT_EQ(mm.streamed_items, n);
  EXPECT_EQ(mm.final_items, 0u);
}

// Peak buffered bytes on a skewed workload: many tiny items plus one giant
// item that only starts emitting after every tiny buffer has drained (it
// gates on the sink count). Gather-then-merge would hold every buffer
// simultaneously (= total_buffered_bytes); streaming must peak strictly
// below that — the tiny buffers' arenas are recycled before the giant one
// even fills.
TEST(StreamingMerge, PeakBufferedBytesBoundedOnSkewedBatch) {
  ThreadPool pool(2);
  AtomicCountSink sink;
  const size_t kTiny = 23;
  const size_t kTinyPaths = 64;
  const size_t kGiantPaths = 8000;
  MergeMetrics mm;
  Status st = RunBufferedParallel(
      pool, kTiny + 1, &sink, nullptr,
      [&](size_t i, PathSink* buf, BatchStats*) {
        if (i == kTiny) {
          // Giant item, last in input order: wait until all tiny results
          // have streamed out (their arenas are recycled by then).
          if (!WaitUntil([&] { return sink.count() >= kTiny * kTinyPaths; })) {
            return Status::Internal("tiny items never drained");
          }
          EmitPaths(buf, i, kGiantPaths);
        } else {
          EmitPaths(buf, i, kTinyPaths);
        }
        return Status::OK();
      },
      &mm);
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_EQ(sink.count(), kTiny * kTinyPaths + kGiantPaths);
  EXPECT_EQ(mm.streamed_items, kTiny + 1);
  // Strictly below the gather baseline...
  EXPECT_LT(mm.peak_buffered_bytes, mm.total_buffered_bytes);
  // ...by at least the tiny buffers' path payloads, all recycled before
  // the giant buffer existed (each holds kTinyPaths 8-vertex paths plus
  // their offsets).
  const uint64_t tiny_payload =
      kTinyPaths * (8 * sizeof(VertexId) + sizeof(uint64_t));
  EXPECT_LE(mm.peak_buffered_bytes,
            mm.total_buffered_bytes - kTiny * tiny_payload);
}

// Error semantics under streaming: the failing item's pre-error paths are
// replayed after every earlier item, nothing after the failure is emitted,
// and the first failure's Status comes back — exactly the sequential early
// return.
TEST(StreamingMerge, FailingItemReplaysPreErrorPathsAndClosesStream) {
  ThreadPool pool(2);
  RecordingSink sink;
  Status st = RunBufferedParallel(
      pool, 3, &sink, nullptr,
      [&](size_t i, PathSink* buf, BatchStats*) -> Status {
        std::vector<VertexId> p = {static_cast<VertexId>(i),
                                   static_cast<VertexId>(i + 1)};
        buf->OnPath(i, PathView{p.data(), p.size()});
        if (i == 1) return Status::ResourceExhausted("boom");
        return Status::OK();
      });
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  ASSERT_EQ(sink.events().size(), 2u);
  EXPECT_EQ(sink.events()[0].first, 0u);
  EXPECT_EQ(sink.events()[0].second, (std::vector<VertexId>{0, 1}));
  EXPECT_EQ(sink.events()[1].first, 1u);
  EXPECT_EQ(sink.events()[1].second, (std::vector<VertexId>{1, 2}));
}

/// A skewed batch for the real engine: `tiny` single-query clusters on
/// disjoint 3-vertex chains, then one giant cluster of `clones` identical
/// queries over a dense blob (every ordered pair of blob vertices linked).
/// Queries are ordered tiny-first, so the giant cluster is the last one
/// and every tiny buffer can drain while it still runs.
struct SkewedBatch {
  Graph g = Graph();
  std::vector<PathQuery> queries;
};

SkewedBatch MakeSkewedBatch(size_t tiny, size_t clones) {
  const VertexId blob = 8;
  GraphBuilder b(static_cast<VertexId>(3 * tiny) + blob);
  SkewedBatch out;
  for (size_t c = 0; c < tiny; ++c) {
    const VertexId base = static_cast<VertexId>(3 * c);
    b.AddEdge(base, base + 1);
    b.AddEdge(base + 1, base + 2);
    out.queries.push_back({base, base + 2, 4});
  }
  const VertexId off = static_cast<VertexId>(3 * tiny);
  for (VertexId u = 0; u < blob; ++u) {
    for (VertexId v = 0; v < blob; ++v) {
      if (u != v) b.AddEdge(off + u, off + v);
    }
  }
  for (size_t c = 0; c < clones; ++c) {
    out.queries.push_back({off, off + blob - 1, 5});
  }
  out.g = *b.Build();
  return out;
}

// Output of the full batch engine must be byte-for-byte identical across
// thread counts on the skewed batch — the case where the giant cluster's
// intra-cluster sub-tasks (parallel detection, enumeration, frontier
// splits, query-parallel assembly) all engage.
TEST(StreamingMerge, SkewedBatchBitIdenticalAcrossThreadCounts) {
  SkewedBatch sb = MakeSkewedBatch(12, 6);
  RecordingSink ref_sink;
  BatchStats ref_stats;
  BatchOptions ref;
  ref.num_threads = 1;
  ASSERT_TRUE(
      RunBatchEnum(sb.g, sb.queries, ref, true, &ref_sink, &ref_stats).ok());
  ASSERT_GT(ref_stats.num_clusters, 2u);
  ASSERT_GT(ref_sink.events().size(), 100u);  // the blob produces real work

  for (int threads : {2, 8}) {
    for (int intra_min : {2, 1 << 20}) {  // with and without intra-cluster
      BatchOptions par = ref;
      par.num_threads = threads;
      par.intra_cluster_min_queries = intra_min;
      RecordingSink par_sink;
      BatchStats par_stats;
      ASSERT_TRUE(
          RunBatchEnum(sb.g, sb.queries, par, true, &par_sink, &par_stats)
              .ok());
      EXPECT_EQ(ref_sink.events(), par_sink.events())
          << "threads=" << threads << " intra_min=" << intra_min;
      EXPECT_EQ(ref_stats.paths_emitted, par_stats.paths_emitted);
      EXPECT_EQ(ref_stats.edges_expanded, par_stats.edges_expanded);
      EXPECT_EQ(ref_stats.edges_pruned, par_stats.edges_pruned);
      EXPECT_EQ(ref_stats.join_probes, par_stats.join_probes);
      EXPECT_EQ(ref_stats.shortcut_splices, par_stats.shortcut_splices);
      EXPECT_EQ(ref_stats.cached_paths, par_stats.cached_paths);
      // The parallel run buffered, streamed, and peaked below the gather
      // baseline (scheduling-dependent metrics: only sanity bounds here).
      EXPECT_GT(par_stats.merge_total_buffered_bytes, 0u)
          << "threads=" << threads;
      EXPECT_LT(par_stats.merge_peak_buffered_bytes,
                par_stats.merge_total_buffered_bytes);
    }
  }
}

// A single-cluster (fully skewed) batch: clustering is disabled so every
// query lands in one cluster and *all* parallelism is intra-cluster. The
// paper-figure graph keeps the oracle small while still exercising
// sharing, splices, and the join.
TEST(StreamingMerge, SingleClusterBatchMatchesSequential) {
  Graph g = PaperFigure1Graph();
  auto queries = PaperFigure1Queries();
  BatchOptions ref;
  ref.num_threads = 1;
  ref.disable_clustering = true;
  RecordingSink ref_sink;
  BatchStats ref_stats;
  ASSERT_TRUE(RunBatchEnum(g, queries, ref, false, &ref_sink, &ref_stats).ok());
  EXPECT_EQ(ref_stats.num_clusters, 1u);

  for (int threads : {2, 8}) {
    BatchOptions par = ref;
    par.num_threads = threads;
    par.intra_cluster_min_queries = 2;
    RecordingSink par_sink;
    BatchStats par_stats;
    ASSERT_TRUE(
        RunBatchEnum(g, queries, par, false, &par_sink, &par_stats).ok());
    EXPECT_EQ(ref_sink.events(), par_sink.events()) << "threads=" << threads;
    EXPECT_EQ(ref_stats.paths_emitted, par_stats.paths_emitted);
    EXPECT_EQ(ref_stats.edges_expanded, par_stats.edges_expanded);
    EXPECT_EQ(ref_stats.edges_pruned, par_stats.edges_pruned);
    EXPECT_EQ(ref_stats.sharing_nodes, par_stats.sharing_nodes);
    EXPECT_EQ(ref_stats.dominating_nodes, par_stats.dominating_nodes);
    EXPECT_EQ(ref_stats.shortcut_splices, par_stats.shortcut_splices);
  }
}

}  // namespace
}  // namespace hcpath
