#include "core/detect.h"

#include <gtest/gtest.h>

#include "core/basic_enum.h"
#include "test_graphs.h"

namespace hcpath {
namespace {

using NodeId = SharingGraph::NodeId;

struct DetectFixture {
  Graph g = PaperFigure1Graph();
  std::vector<PathQuery> queries = PaperFigure1Queries();
  DistanceIndex index;
  BatchOptions options;

  DetectFixture() { BuildBatchIndex(g, queries, &index, nullptr); }

  DetectionResult Run(Direction dir, const std::vector<size_t>& cluster) {
    std::vector<Hop> budgets;
    std::vector<bool> skip;
    for (size_t qi : cluster) {
      budgets.push_back(dir == Direction::kForward
                            ? queries[qi].ForwardBudget()
                            : queries[qi].BackwardBudget());
      skip.push_back(false);
    }
    return DetectCommonQueries(g, dir, queries, cluster, budgets, skip,
                               index, options, nullptr);
  }
};

TEST(Detect, PaperExampleForwardFindsDominatingQueries) {
  // Example 4.2 on cluster {q0, q1, q2}: roots q_{v0,3}, q_{v2,3}, q_{v5,3};
  // dominating queries q_{v1,2} (shared by all three) and q_{v4,2}
  // (shared by q0, q1) are detected.
  DetectFixture fx;
  DetectionResult r = fx.Run(Direction::kForward, {0, 1, 2});
  const SharingGraph& psi = r.psi;

  // 3 roots + 2 dominating nodes.
  ASSERT_EQ(psi.NumNodes(), 5u);
  int dominating = 0;
  NodeId at_v1 = SharingGraph::kNoNode, at_v4 = SharingGraph::kNoNode;
  for (NodeId id = 0; id < psi.NumNodes(); ++id) {
    if (!psi.node(id).is_root) {
      ++dominating;
      if (psi.node(id).vertex == 1) at_v1 = id;
      if (psi.node(id).vertex == 4) at_v4 = id;
    }
  }
  EXPECT_EQ(dominating, 2);
  ASSERT_NE(at_v1, SharingGraph::kNoNode);
  ASSERT_NE(at_v4, SharingGraph::kNoNode);
  EXPECT_EQ(psi.node(at_v1).budget, 2);
  EXPECT_EQ(psi.node(at_v4).budget, 2);
  EXPECT_EQ(psi.node(at_v1).users.size(), 3u);  // q0, q1, q2 roots
  EXPECT_EQ(psi.node(at_v4).users.size(), 2u);  // q0, q1 roots
}

TEST(Detect, PaperExampleBackwardDerivesDisplacedRoot) {
  // Fig 5(b): on Gr, q2's root q_{v12,2} serves the arrivals of q0/q1's
  // backward traversals at v12 (the q_{v12,1} sub-query).
  DetectFixture fx;
  DetectionResult r = fx.Run(Direction::kBackward, {0, 1, 2});
  const SharingGraph& psi = r.psi;
  // Roots at v11 (q0), v13 (q1), v12 (q2). The v12 root must have users.
  NodeId v12_root = SharingGraph::kNoNode;
  for (NodeId id = 0; id < psi.NumNodes(); ++id) {
    if (psi.node(id).vertex == 12 && psi.node(id).is_root) v12_root = id;
  }
  ASSERT_NE(v12_root, SharingGraph::kNoNode);
  EXPECT_GE(psi.node(v12_root).users.size(), 1u);
}

TEST(Detect, RootsDedupByVertexKeepMaxBudget) {
  DetectFixture fx;
  // Two queries from the same source with different k: one root, max hf.
  fx.queries = {{0, 11, 5}, {0, 13, 3}};
  BuildBatchIndex(fx.g, fx.queries, &fx.index, nullptr);
  DetectionResult r = fx.Run(Direction::kForward, {0, 1});
  int roots = 0;
  for (NodeId id = 0; id < r.psi.NumNodes(); ++id) {
    if (r.psi.node(id).is_root) {
      ++roots;
      EXPECT_EQ(r.psi.node(id).vertex, 0u);
      EXPECT_EQ(r.psi.node(id).budget, 3);  // max(⌈5/2⌉, ⌈3/2⌉)
      EXPECT_EQ(r.psi.node(id).attached_queries.size(), 2u);
    }
  }
  EXPECT_EQ(roots, 1);
  EXPECT_EQ(r.root_of[0], r.root_of[1]);
}

TEST(Detect, SkippedQueriesGetNoRoot) {
  DetectFixture fx;
  std::vector<size_t> cluster = {0, 1};
  std::vector<Hop> budgets = {3, 3};
  std::vector<bool> skip = {false, true};
  DetectionResult r =
      DetectCommonQueries(fx.g, Direction::kForward, fx.queries, cluster,
                          budgets, skip, fx.index, fx.options, nullptr);
  EXPECT_NE(r.root_of[0], SharingGraph::kNoNode);
  EXPECT_EQ(r.root_of[1], SharingGraph::kNoNode);
}

TEST(Detect, PsiIsAlwaysAcyclic) {
  DetectFixture fx;
  for (Direction dir : {Direction::kForward, Direction::kBackward}) {
    DetectionResult r = fx.Run(dir, {0, 1, 2, 3, 4});
    // TopologicalOrder CHECKs size == node count, i.e. acyclicity.
    EXPECT_EQ(r.psi.TopologicalOrder().size(), r.psi.NumNodes());
  }
}

TEST(Detect, MinDominatingBudgetSuppressesTinyNodes) {
  DetectFixture fx;
  fx.options.min_dominating_budget = 10;  // larger than any budget
  DetectionResult r = fx.Run(Direction::kForward, {0, 1, 2});
  for (NodeId id = 0; id < r.psi.NumNodes(); ++id) {
    EXPECT_TRUE(r.psi.node(id).is_root);  // no dominating nodes created
  }
}

TEST(Detect, SingletonClusterHasOnlyRoot) {
  DetectFixture fx;
  DetectionResult r = fx.Run(Direction::kForward, {2});
  EXPECT_EQ(r.psi.NumNodes(), 1u);
  EXPECT_TRUE(r.psi.node(0).is_root);
  EXPECT_EQ(r.psi.NumEdges(), 0u);
}

TEST(Detect, RootSlacksSeededWithQueryK) {
  DetectFixture fx;
  DetectionResult r = fx.Run(Direction::kForward, {0});
  ASSERT_EQ(r.psi.NumNodes(), 1u);
  ASSERT_EQ(r.psi.node(0).slacks.size(), 1u);
  EXPECT_EQ(r.psi.node(0).slacks[0].query, 0u);
  EXPECT_EQ(r.psi.node(0).slacks[0].slack, 5);
}

}  // namespace
}  // namespace hcpath
