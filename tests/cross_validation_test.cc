// The central correctness suite: on parameterized sweeps of generator,
// size, hop constraint, batch size, gamma and pruning mode, every
// production algorithm must return exactly the brute-force oracle's path
// sets.

#include <gtest/gtest.h>

#include <tuple>

#include "hcpath/hcpath.h"

namespace hcpath {
namespace {

struct SweepCase {
  const char* generator;
  uint32_t n;
  uint32_t edges_or_degree;
  int k;
  int num_queries;
  double gamma;
  SharedPruning pruning;
};

std::string CaseName(const ::testing::TestParamInfo<SweepCase>& info) {
  const SweepCase& c = info.param;
  std::string name = std::string(c.generator) + "_n" + std::to_string(c.n) +
                     "_k" + std::to_string(c.k) + "_q" +
                     std::to_string(c.num_queries) + "_g" +
                     std::to_string(static_cast<int>(c.gamma * 10)) +
                     (c.pruning == SharedPruning::kPerTarget ? "_pt" : "_gm");
  return name;
}

Graph MakeGraph(const SweepCase& c, uint64_t seed) {
  Rng rng(seed);
  if (std::string(c.generator) == "er") {
    return *GenerateErdosRenyi(c.n, c.n * c.edges_or_degree, rng);
  }
  if (std::string(c.generator) == "ba") {
    return *GenerateBarabasiAlbert(c.n, c.edges_or_degree, rng);
  }
  if (std::string(c.generator) == "grid") {
    return *GenerateGrid(c.n, c.n);
  }
  Rng r2(seed);
  return *GenerateLayeredDag(6, c.n, c.edges_or_degree, r2);
}

class CrossValidation : public ::testing::TestWithParam<SweepCase> {};

TEST_P(CrossValidation, AllAlgorithmsMatchOracle) {
  const SweepCase& c = GetParam();
  Graph g = MakeGraph(c, 1234 + c.n);

  // Mix of clone, near-duplicate and random queries to exercise sharing.
  Rng qrng(77);
  std::vector<PathQuery> queries;
  const VertexId nv = g.NumVertices();
  while (queries.size() < static_cast<size_t>(c.num_queries)) {
    VertexId s = static_cast<VertexId>(qrng.NextBounded(nv));
    VertexId t = static_cast<VertexId>(qrng.NextBounded(nv));
    if (s == t) continue;
    queries.push_back({s, t, c.k});
    // Duplicate some queries to create guaranteed sharing.
    if (queries.size() < static_cast<size_t>(c.num_queries) &&
        qrng.NextBernoulli(0.3)) {
      queries.push_back({s, t, std::max(1, c.k - 1)});
    }
  }

  std::vector<std::vector<std::vector<VertexId>>> oracle;
  for (const PathQuery& q : queries) {
    oracle.push_back(BruteForcePaths(g, q)->ToSortedVectors());
  }

  BatchPathEnumerator enumerator(g);
  for (Algorithm algo :
       {Algorithm::kPathEnum, Algorithm::kBasicEnum,
        Algorithm::kBasicEnumPlus, Algorithm::kBatchEnum,
        Algorithm::kBatchEnumPlus}) {
    BatchOptions opt;
    opt.algorithm = algo;
    opt.gamma = c.gamma;
    opt.shared_pruning = c.pruning;
    CollectingSink sink(queries.size());
    auto result = enumerator.Run(queries, opt, &sink);
    ASSERT_TRUE(result.ok()) << result.status();
    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_EQ(sink.paths(i).ToSortedVectors(), oracle[i])
          << AlgorithmName(algo) << " wrong on query " << i << " "
          << queries[i].ToString();
      EXPECT_EQ(result->path_counts[i], oracle[i].size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrossValidation,
    ::testing::Values(
        SweepCase{"er", 40, 6, 3, 6, 0.5, SharedPruning::kPerTarget},
        SweepCase{"er", 60, 6, 5, 10, 0.5, SharedPruning::kPerTarget},
        SweepCase{"er", 60, 6, 5, 10, 0.5, SharedPruning::kGlobalMin},
        SweepCase{"er", 80, 4, 7, 8, 0.2, SharedPruning::kPerTarget},
        SweepCase{"er", 80, 4, 7, 8, 0.9, SharedPruning::kPerTarget},
        SweepCase{"ba", 100, 3, 4, 12, 0.5, SharedPruning::kPerTarget},
        SweepCase{"ba", 100, 3, 6, 12, 0.5, SharedPruning::kGlobalMin},
        SweepCase{"ba", 200, 2, 5, 16, 0.3, SharedPruning::kPerTarget},
        SweepCase{"grid", 5, 0, 8, 6, 0.5, SharedPruning::kPerTarget},
        SweepCase{"dag", 8, 3, 6, 10, 0.5, SharedPruning::kPerTarget},
        SweepCase{"er", 50, 8, 4, 20, 0.5, SharedPruning::kPerTarget},
        SweepCase{"er", 50, 8, 4, 20, 1.0, SharedPruning::kPerTarget}),
    CaseName);

// Property sweep over k for a fixed graph: result counts must be
// monotonically non-decreasing in k and identical across algorithms.
class HopSweep : public ::testing::TestWithParam<int> {};

TEST_P(HopSweep, CountsMonotoneAndConsistent) {
  const int k = GetParam();
  Rng rng(5);
  Graph g = *GenerateErdosRenyi(70, 420, rng);
  PathQuery q{3, 9, k};
  auto oracle = BruteForcePaths(g, q);
  ASSERT_TRUE(oracle.ok());

  BatchPathEnumerator enumerator(g);
  BatchOptions opt;
  for (Algorithm algo : {Algorithm::kBasicEnum, Algorithm::kBatchEnumPlus}) {
    opt.algorithm = algo;
    auto result = enumerator.Run({q}, opt);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->path_counts[0], oracle->size());
  }
  if (k > 1) {
    PathQuery smaller{3, 9, k - 1};
    EXPECT_LE(BruteForcePaths(g, smaller)->size(), oracle->size());
  }
}

INSTANTIATE_TEST_SUITE_P(K1to7, HopSweep, ::testing::Range(1, 8));

// Permutation invariance: shuffling the batch must not change any result.
TEST(CrossValidationExtra, QueryOrderInvariance) {
  Rng rng(21);
  Graph g = *GenerateBarabasiAlbert(120, 3, rng);
  Rng qrng(22);
  std::vector<PathQuery> queries;
  while (queries.size() < 9) {
    VertexId s = static_cast<VertexId>(qrng.NextBounded(120));
    VertexId t = static_cast<VertexId>(qrng.NextBounded(120));
    if (s != t) queries.push_back({s, t, 5});
  }
  BatchPathEnumerator enumerator(g);
  BatchOptions opt;
  opt.algorithm = Algorithm::kBatchEnumPlus;
  auto base = enumerator.Run(queries, opt);
  ASSERT_TRUE(base.ok());

  std::vector<size_t> perm = {4, 2, 8, 0, 6, 1, 7, 3, 5};
  std::vector<PathQuery> shuffled;
  for (size_t p : perm) shuffled.push_back(queries[p]);
  auto permuted = enumerator.Run(shuffled, opt);
  ASSERT_TRUE(permuted.ok());
  for (size_t i = 0; i < perm.size(); ++i) {
    EXPECT_EQ(permuted->path_counts[i], base->path_counts[perm[i]]);
  }
}

// Determinism: two runs with identical inputs give identical outputs.
TEST(CrossValidationExtra, DeterministicAcrossRuns) {
  Rng rng(31);
  Graph g = *GenerateErdosRenyi(90, 600, rng);
  std::vector<PathQuery> queries = {{0, 5, 5}, {1, 6, 5}, {0, 5, 5},
                                    {2, 7, 4}};
  BatchPathEnumerator enumerator(g);
  BatchOptions opt;
  opt.algorithm = Algorithm::kBatchEnum;
  CollectingSink a(4), b(4);
  ASSERT_TRUE(enumerator.Run(queries, opt, &a).ok());
  ASSERT_TRUE(enumerator.Run(queries, opt, &b).ok());
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(a.paths(i).ToSortedVectors(), b.paths(i).ToSortedVectors());
  }
}

// Structural properties of every emitted path, enforced at the sink.
class PropertySink : public PathSink {
 public:
  PropertySink(const Graph& g, const std::vector<PathQuery>& queries)
      : g_(g), queries_(queries) {}
  void OnPath(size_t qi, PathView p) override {
    const PathQuery& q = queries_[qi];
    ASSERT_GE(p.size(), 2u);
    EXPECT_EQ(p.front(), q.s);
    EXPECT_EQ(p.back(), q.t);
    EXPECT_LE(p.size() - 1, static_cast<size_t>(q.k));
    EXPECT_TRUE(IsSimplePath(p));
    EXPECT_TRUE(PathExistsInGraph(g_, p));
  }

 private:
  const Graph& g_;
  const std::vector<PathQuery>& queries_;
};

TEST(CrossValidationExtra, EveryEmittedPathIsValid) {
  Rng rng(41);
  Graph g = *GenerateBarabasiAlbert(300, 4, rng);
  Rng qrng(43);
  std::vector<PathQuery> queries;
  while (queries.size() < 15) {
    VertexId s = static_cast<VertexId>(qrng.NextBounded(300));
    VertexId t = static_cast<VertexId>(qrng.NextBounded(300));
    if (s != t) queries.push_back({s, t, 6});
  }
  PropertySink sink(g, queries);
  BatchPathEnumerator enumerator(g);
  for (Algorithm algo : {Algorithm::kBasicEnumPlus,
                         Algorithm::kBatchEnumPlus}) {
    BatchOptions opt;
    opt.algorithm = algo;
    ASSERT_TRUE(enumerator.Run(queries, opt, &sink).ok());
  }
}

}  // namespace
}  // namespace hcpath
