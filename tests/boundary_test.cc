// Boundary and edge-case coverage: minimal hop constraints, degenerate
// graphs, and small-world topologies (the bench stand-in family) under
// full cross-validation.

#include <gtest/gtest.h>

#include "hcpath/hcpath.h"

namespace hcpath {
namespace {

std::vector<Algorithm> AllAlgorithms() {
  return {Algorithm::kPathEnum, Algorithm::kBasicEnum,
          Algorithm::kBasicEnumPlus, Algorithm::kBatchEnum,
          Algorithm::kBatchEnumPlus};
}

void ExpectAllMatchOracle(const Graph& g,
                          const std::vector<PathQuery>& queries) {
  std::vector<std::vector<std::vector<VertexId>>> oracle;
  for (const PathQuery& q : queries) {
    oracle.push_back(BruteForcePaths(g, q)->ToSortedVectors());
  }
  BatchPathEnumerator enumerator(g);
  for (Algorithm algo : AllAlgorithms()) {
    // Boundary inputs must hold through the parallel engines too, not just
    // the sequential reference path (threads = 1).
    for (int threads : {1, 4}) {
      BatchOptions opt;
      opt.algorithm = algo;
      opt.num_threads = threads;
      opt.intra_cluster_min_queries = 2;
      CollectingSink sink(queries.size());
      auto result = enumerator.Run(queries, opt, &sink);
      ASSERT_TRUE(result.ok())
          << AlgorithmName(algo) << " threads=" << threads << " "
          << result.status();
      for (size_t i = 0; i < queries.size(); ++i) {
        ASSERT_EQ(sink.paths(i).ToSortedVectors(), oracle[i])
            << AlgorithmName(algo) << " threads=" << threads << " on "
            << queries[i].ToString();
      }
    }
  }
}

/// Every algorithm must reject the batch with InvalidArgument, and the
/// parallel run must mirror the sequential one exactly: same message and
/// the same pre-rejection emission (the batch engines validate up front
/// and emit nothing; PathEnum validates per query as it streams, so a
/// healthy query ahead of the poisoned one legitimately emits first —
/// in both modes identically).
void ExpectAllRejectIdentically(const Graph& g,
                                const std::vector<PathQuery>& queries) {
  BatchPathEnumerator enumerator(g);
  for (Algorithm algo : AllAlgorithms()) {
    std::string seq_message;
    std::vector<std::vector<std::vector<VertexId>>> seq_paths;
    for (int threads : {1, 4}) {
      BatchOptions opt;
      opt.algorithm = algo;
      opt.num_threads = threads;
      CollectingSink sink(queries.size());
      auto result = enumerator.Run(queries, opt, &sink);
      ASSERT_FALSE(result.ok()) << AlgorithmName(algo) << " threads=" << threads;
      EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
          << AlgorithmName(algo) << " threads=" << threads;
      std::vector<std::vector<std::vector<VertexId>>> paths;
      for (size_t i = 0; i < queries.size(); ++i) {
        paths.push_back(sink.paths(i).ToSortedVectors());
      }
      if (threads == 1) {
        seq_message = result.status().message();
        seq_paths = std::move(paths);
      } else {
        EXPECT_EQ(result.status().message(), seq_message)
            << AlgorithmName(algo) << ": parallel rejection must match";
        EXPECT_EQ(paths, seq_paths)
            << AlgorithmName(algo) << ": parallel pre-rejection emission "
            << "must match sequential";
      }
      // The batch engines validate the whole batch before running anything.
      if (algo != Algorithm::kPathEnum) {
        for (size_t i = 0; i < queries.size(); ++i) {
          EXPECT_EQ(sink.paths(i).size(), 0u)
              << AlgorithmName(algo) << " threads=" << threads;
        }
      }
    }
  }
}

TEST(Boundary, KEqualsOne) {
  Rng rng(3);
  Graph g = *GenerateErdosRenyi(30, 200, rng);
  std::vector<PathQuery> queries;
  Rng qrng(4);
  while (queries.size() < 6) {
    VertexId s = static_cast<VertexId>(qrng.NextBounded(30));
    VertexId t = static_cast<VertexId>(qrng.NextBounded(30));
    if (s != t) queries.push_back({s, t, 1});
  }
  ExpectAllMatchOracle(g, queries);
}

TEST(Boundary, KEqualsTwoMixedWithLarger) {
  Rng rng(5);
  Graph g = *GenerateErdosRenyi(40, 300, rng);
  std::vector<PathQuery> queries = {{0, 1, 2}, {0, 1, 6}, {2, 3, 2},
                                    {2, 3, 1}, {0, 1, 2}};
  ExpectAllMatchOracle(g, queries);
}

TEST(Boundary, TwoVertexGraph) {
  GraphBuilder b(2);
  b.AddEdge(0, 1);
  Graph g = *b.Build();
  ExpectAllMatchOracle(g, {{0, 1, 1}, {0, 1, 5}, {1, 0, 5}});
}

TEST(Boundary, CycleGraphPaths) {
  Graph g = *GenerateCycle(8);
  // Exactly one simple path between any ordered pair on a directed cycle.
  ExpectAllMatchOracle(g, {{0, 4, 4}, {0, 4, 3}, {0, 4, 8}, {4, 0, 4}});
}

TEST(Boundary, SmallWorldCrossValidation) {
  Rng rng(7);
  Graph g = *GenerateSmallWorld(300, 4, 0.05, rng);
  std::vector<PathQuery> queries;
  Rng qrng(9);
  while (queries.size() < 8) {
    VertexId s = static_cast<VertexId>(qrng.NextBounded(300));
    VertexId t = static_cast<VertexId>((s + 1 + qrng.NextBounded(14)) % 300);
    queries.push_back({s, t, 5});
  }
  // Near-duplicates to force sharing.
  queries.push_back(queries[0]);
  queries.push_back({queries[0].s, queries[0].t, 4});
  ExpectAllMatchOracle(g, queries);
}

TEST(Boundary, DisconnectedComponents) {
  GraphBuilder b(10);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(5, 6);
  b.AddEdge(6, 7);
  Graph g = *b.Build();
  ExpectAllMatchOracle(g, {{0, 2, 5}, {0, 7, 5}, {5, 7, 5}, {0, 9, 5}});
}

TEST(Boundary, DuplicateQueriesShareRootsExactly) {
  Rng rng(11);
  Graph g = *GenerateSmallWorld(200, 4, 0.1, rng);
  std::vector<PathQuery> queries(10, PathQuery{5, 20, 5});
  BatchPathEnumerator enumerator(g);
  BatchOptions opt;
  opt.algorithm = Algorithm::kBatchEnum;
  auto result = enumerator.Run(queries, opt);
  ASSERT_TRUE(result.ok());
  for (size_t i = 1; i < queries.size(); ++i) {
    EXPECT_EQ(result->path_counts[i], result->path_counts[0]);
  }
  // All ten queries map to one forward and one backward root.
  EXPECT_EQ(result->stats.sharing_nodes, 2u);
}

TEST(Boundary, MaxHopsQueryOnChain) {
  Graph g = *GeneratePath(kMaxHops + 2);
  std::vector<PathQuery> queries = {
      {0, static_cast<VertexId>(kMaxHops), kMaxHops}};
  ExpectAllMatchOracle(g, queries);
}

// --- degenerate inputs through the parallel path -------------------------
// These used to be validated only against the sequential engines; the
// parallel path (thread pools, buffered streaming merge, intra-cluster
// sub-tasks) must reject or no-op exactly the same way.

TEST(Boundary, EmptyBatchAllEnginesAllThreadCounts) {
  Rng rng(13);
  Graph g = *GenerateErdosRenyi(20, 60, rng);
  BatchPathEnumerator enumerator(g);
  for (Algorithm algo : AllAlgorithms()) {
    for (int threads : {1, 4}) {
      BatchOptions opt;
      opt.algorithm = algo;
      opt.num_threads = threads;
      auto result = enumerator.Run({}, opt);
      ASSERT_TRUE(result.ok())
          << AlgorithmName(algo) << " threads=" << threads << " "
          << result.status();
      EXPECT_TRUE(result->path_counts.empty());
      EXPECT_EQ(result->stats.paths_emitted, 0u);
    }
  }
}

TEST(Boundary, KZeroRejectedOnParallelPath) {
  Rng rng(17);
  Graph g = *GenerateErdosRenyi(20, 60, rng);
  // A healthy query ahead of the poisoned one: validation must still fail
  // the whole batch before any engine (or worker) runs.
  ExpectAllRejectIdentically(g, {{0, 1, 3}, {2, 5, 0}});
}

TEST(Boundary, SourceEqualsTargetRejectedOnParallelPath) {
  Rng rng(19);
  Graph g = *GenerateErdosRenyi(20, 60, rng);
  ExpectAllRejectIdentically(g, {{0, 1, 3}, {7, 7, 4}, {2, 5, 2}});
}

TEST(Boundary, DisconnectedEndpointsOnParallelPath) {
  // Two components plus isolated vertices; unreachable and reachable
  // queries interleave so parallel runs exercise the skip bookkeeping of
  // clusters whose members are partly dead.
  GraphBuilder b(12);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 3);
  b.AddEdge(6, 7);
  b.AddEdge(7, 8);
  Graph g = *b.Build();
  ExpectAllMatchOracle(g, {{0, 3, 5},    // reachable
                           {0, 8, 5},    // cross-component: no paths
                           {6, 8, 4},    // reachable
                           {0, 11, 3},   // into an isolated vertex
                           {10, 11, 3},  // isolated to isolated
                           {3, 0, 4}});  // against edge direction: no paths
}

}  // namespace
}  // namespace hcpath
