#include "bfs/msbfs.h"

#include <gtest/gtest.h>

#include "bfs/bfs.h"
#include "graph/generators.h"

namespace hcpath {
namespace {

class MsBfsEquivalence : public ::testing::TestWithParam<int> {};

// Property: multi-source BFS must match per-source single BFS exactly,
// across source counts that exercise one and several 64-wide waves.
TEST_P(MsBfsEquivalence, MatchesSingleSourceBfs) {
  const int num_sources = GetParam();
  Rng grng(17);
  auto g = GenerateBarabasiAlbert(800, 4, grng);
  ASSERT_TRUE(g.ok());

  Rng rng(23);
  std::vector<VertexId> sources;
  std::vector<Hop> caps;
  for (int i = 0; i < num_sources; ++i) {
    sources.push_back(static_cast<VertexId>(rng.NextBounded(800)));
    caps.push_back(static_cast<Hop>(2 + rng.NextBounded(4)));
  }

  for (Direction dir : {Direction::kForward, Direction::kBackward}) {
    MsBfsResult ms = MultiSourceBfs(*g, sources, caps, dir);
    ASSERT_EQ(ms.per_source.size(), sources.size());
    for (size_t i = 0; i < sources.size(); ++i) {
      VertexDistMap single = HopCappedBfs(*g, sources[i], caps[i], dir);
      EXPECT_EQ(ms.per_source[i].size(), single.size())
          << "source " << i << " size mismatch";
      single.ForEach([&](VertexId v, Hop d) {
        EXPECT_EQ(ms.per_source[i].Lookup(v), d)
            << "source " << sources[i] << " v=" << v;
      });
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SourceCounts, MsBfsEquivalence,
                         ::testing::Values(1, 2, 63, 64, 65, 150));

TEST(MsBfs, MinDistIsPointwiseMinimum) {
  Rng grng(31);
  auto g = GenerateErdosRenyi(400, 3000, grng);
  std::vector<VertexId> sources = {1, 5, 9};
  std::vector<Hop> caps = {4, 4, 4};
  MsBfsResult ms = MultiSourceBfs(*g, sources, caps, Direction::kForward);
  for (VertexId v = 0; v < g->NumVertices(); ++v) {
    Hop expected = kUnreachable;
    for (size_t i = 0; i < sources.size(); ++i) {
      expected = std::min(expected, ms.per_source[i].Lookup(v));
    }
    EXPECT_EQ(ms.min_dist[v], expected) << "v=" << v;
  }
}

TEST(MsBfs, DuplicateSourcesShareOneTraversal) {
  Rng grng(37);
  auto g = GenerateErdosRenyi(200, 1500, grng);
  std::vector<VertexId> sources = {3, 3, 3};
  std::vector<Hop> caps = {2, 4, 3};
  MsBfsResult ms = MultiSourceBfs(*g, sources, caps, Direction::kForward);
  // Each copy is capped at its own k even though the BFS ran to max cap.
  VertexDistMap d2 = HopCappedBfs(*g, 3, 2, Direction::kForward);
  VertexDistMap d4 = HopCappedBfs(*g, 3, 4, Direction::kForward);
  EXPECT_EQ(ms.per_source[0].size(), d2.size());
  EXPECT_EQ(ms.per_source[1].size(), d4.size());
}

TEST(MsBfs, EmptySourcesYieldEmptyResult) {
  Rng grng(41);
  auto g = GenerateErdosRenyi(50, 200, grng);
  MsBfsResult ms = MultiSourceBfs(*g, {}, {}, Direction::kForward);
  EXPECT_TRUE(ms.per_source.empty());
  for (Hop d : ms.min_dist) EXPECT_EQ(d, kUnreachable);
}

TEST(MsBfs, CapZeroDiscoversOnlySources) {
  auto g = GeneratePath(10);
  MsBfsResult ms = MultiSourceBfs(*g, {2, 7}, {0, 0}, Direction::kForward);
  EXPECT_EQ(ms.per_source[0].size(), 1u);
  EXPECT_EQ(ms.per_source[1].size(), 1u);
  EXPECT_EQ(ms.min_dist[2], 0);
  EXPECT_EQ(ms.min_dist[3], kUnreachable);
}

}  // namespace
}  // namespace hcpath
