#include "core/sharing_graph.h"

#include <gtest/gtest.h>

namespace hcpath {
namespace {

using NodeId = SharingGraph::NodeId;

TEST(SharingGraph, AddNodesAndEdges) {
  SharingGraph psi;
  NodeId a = psi.AddNode(10, 3, true);
  NodeId b = psi.AddNode(20, 2, false);
  EXPECT_TRUE(psi.TryAddEdge(b, a));  // a uses b
  EXPECT_EQ(psi.NumNodes(), 2u);
  EXPECT_EQ(psi.NumEdges(), 1u);
  EXPECT_EQ(psi.node(a).deps, (std::vector<NodeId>{b}));
  EXPECT_EQ(psi.node(b).users, (std::vector<NodeId>{a}));
}

TEST(SharingGraph, DuplicateEdgeIsIdempotent) {
  SharingGraph psi;
  NodeId a = psi.AddNode(1, 3, true);
  NodeId b = psi.AddNode(2, 2, false);
  EXPECT_TRUE(psi.TryAddEdge(b, a));
  EXPECT_TRUE(psi.TryAddEdge(b, a));
  EXPECT_EQ(psi.NumEdges(), 1u);
}

TEST(SharingGraph, CycleEdgeIsRejected) {
  SharingGraph psi;
  NodeId a = psi.AddNode(1, 3, false);
  NodeId b = psi.AddNode(2, 2, false);
  NodeId c = psi.AddNode(3, 1, false);
  ASSERT_TRUE(psi.TryAddEdge(a, b));  // b uses a
  ASSERT_TRUE(psi.TryAddEdge(b, c));  // c uses b
  EXPECT_FALSE(psi.TryAddEdge(c, a));  // a uses c -> cycle
  EXPECT_EQ(psi.cycle_edges_skipped(), 1u);
  EXPECT_FALSE(psi.TryAddEdge(a, a));  // self loop
}

TEST(SharingGraph, TopologicalOrderRespectsDeps) {
  SharingGraph psi;
  NodeId a = psi.AddNode(1, 3, true);
  NodeId b = psi.AddNode(2, 2, false);
  NodeId c = psi.AddNode(3, 1, false);
  psi.TryAddEdge(c, b);  // b uses c
  psi.TryAddEdge(b, a);  // a uses b
  auto order = psi.TopologicalOrder();
  ASSERT_EQ(order.size(), 3u);
  auto pos = [&](NodeId id) {
    return std::find(order.begin(), order.end(), id) - order.begin();
  };
  EXPECT_LT(pos(c), pos(b));
  EXPECT_LT(pos(b), pos(a));
}

TEST(SharingGraph, DepAtKeepsLargestBudgetPerVertex) {
  SharingGraph psi;
  NodeId user = psi.AddNode(1, 5, true);
  NodeId small = psi.AddNode(7, 2, false);
  NodeId big = psi.AddNode(7, 4, false);
  // Both anchored at vertex 7 (can happen across anchor displacement).
  ASSERT_TRUE(psi.TryAddEdge(small, user));
  ASSERT_TRUE(psi.TryAddEdge(big, user));
  const auto& dep_at = psi.node(user).dep_at;
  ASSERT_EQ(dep_at.size(), 1u);
  EXPECT_EQ(dep_at[0].first, 7u);
  EXPECT_EQ(dep_at[0].second, big);
}

TEST(SharingGraph, SlackPropagationShiftsBySpliceDepth) {
  SharingGraph psi;
  NodeId root = psi.AddNode(0, 3, true);  // budget 3
  psi.mutable_node(root).slacks.push_back({0, 7});  // query 0, slack k=7
  NodeId dom = psi.AddNode(5, 2, false);  // budget 2
  ASSERT_TRUE(psi.TryAddEdge(dom, root));
  psi.PropagateSlacks();
  // Min splice depth = 3 - 2 = 1, so dom inherits slack 7 - 1 = 6.
  ASSERT_EQ(psi.node(dom).slacks.size(), 1u);
  EXPECT_EQ(psi.node(dom).slacks[0].query, 0u);
  EXPECT_EQ(psi.node(dom).slacks[0].slack, 6);
}

TEST(SharingGraph, SlackPropagationKeepsMaxPerQuery) {
  SharingGraph psi;
  NodeId r1 = psi.AddNode(0, 3, true);
  NodeId r2 = psi.AddNode(1, 2, true);
  psi.mutable_node(r1).slacks.push_back({0, 7});
  psi.mutable_node(r2).slacks.push_back({0, 4});
  NodeId dom = psi.AddNode(5, 2, false);
  ASSERT_TRUE(psi.TryAddEdge(dom, r1));
  ASSERT_TRUE(psi.TryAddEdge(dom, r2));
  psi.PropagateSlacks();
  ASSERT_EQ(psi.node(dom).slacks.size(), 1u);
  // From r1: 7 - 1 = 6; from r2: 4 - 0 = 4; keep 6.
  EXPECT_EQ(psi.node(dom).slacks[0].slack, 6);
}

TEST(SharingGraph, SlackPropagationIsTransitive) {
  SharingGraph psi;
  NodeId root = psi.AddNode(0, 4, true);
  psi.mutable_node(root).slacks.push_back({0, 8});
  NodeId mid = psi.AddNode(1, 3, false);
  NodeId leaf = psi.AddNode(2, 1, false);
  ASSERT_TRUE(psi.TryAddEdge(mid, root));
  ASSERT_TRUE(psi.TryAddEdge(leaf, mid));
  psi.PropagateSlacks();
  // root -> mid: 8 - (4-3) = 7; mid -> leaf: 7 - (3-1) = 5.
  ASSERT_EQ(psi.node(leaf).slacks.size(), 1u);
  EXPECT_EQ(psi.node(leaf).slacks[0].slack, 5);
}

TEST(SharingGraph, LargerBudgetDepGetsNoNegativeShift) {
  SharingGraph psi;
  NodeId user = psi.AddNode(0, 2, true);
  psi.mutable_node(user).slacks.push_back({0, 5});
  NodeId dep = psi.AddNode(0, 4, false);  // bigger budget (copy-filter case)
  ASSERT_TRUE(psi.TryAddEdge(dep, user));
  psi.PropagateSlacks();
  ASSERT_EQ(psi.node(dep).slacks.size(), 1u);
  EXPECT_EQ(psi.node(dep).slacks[0].slack, 5);  // shift clamped at 0
}

}  // namespace
}  // namespace hcpath
