// Seed-driven randomized differential suite: every configuration draws a
// random (graph, query batch, options) tuple and cross-checks
//   * RunBatchEnum / RunBasicEnum (both orders) against the BruteForce
//     oracle for identical per-query path sets,
//   * every engine's parallel runs (num_threads in {2, 8}) against its
//     sequential run for a byte-identical emission stream, identical
//     Status (code and message), and identical work counters,
//   * invalid-input and max_paths error configurations for identical
//     error semantics across thread counts.
//
// On failure the reproducing seed is printed via SCOPED_TRACE; re-run just
// that configuration with HCPATH_FUZZ_SEED=<seed>. HCPATH_FUZZ_CONFIGS
// overrides the number of configurations (default 200; the tsan smoke run
// registered in CMakeLists.txt uses a reduced count).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <future>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/basic_enum.h"
#include "core/batch_enum.h"
#include "core/brute_force.h"
#include "core/enumerator.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "graph/graph_store.h"
#include "service/admission_status.h"
#include "service/fault_injector.h"
#include "service/path_engine.h"
#include "service/sharded_service.h"
#include "service/clock.h"
#include "util/rng.h"

namespace hcpath {
namespace {

class RecordingSink : public PathSink {
 public:
  using Event = std::pair<size_t, std::vector<VertexId>>;
  void OnPath(size_t qi, PathView p) override {
    events_.emplace_back(qi, std::vector<VertexId>(p.begin(), p.end()));
  }
  const std::vector<Event>& events() const { return events_; }

  std::vector<std::vector<VertexId>> SortedPathsOf(size_t qi) const {
    std::vector<std::vector<VertexId>> out;
    for (const Event& e : events_) {
      if (e.first == qi) out.push_back(e.second);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  std::vector<Event> events_;
};

struct EngineRun {
  Status status;
  std::vector<RecordingSink::Event> events;
  BatchStats stats;
};

EngineRun RunEngine(const Graph& g, const std::vector<PathQuery>& queries,
                    bool batch_engine, bool optimized,
                    const BatchOptions& options) {
  EngineRun run;
  RecordingSink sink;
  run.status = batch_engine
                   ? RunBatchEnum(g, queries, options, optimized, &sink,
                                  &run.stats)
                   : RunBasicEnum(g, queries, options, optimized, &sink,
                                  &run.stats);
  run.events = sink.events();
  return run;
}

Graph RandomGraph(Rng& rng, std::string* desc) {
  switch (rng.NextBounded(7)) {
    case 0: {
      const VertexId n = static_cast<VertexId>(8 + rng.NextBounded(40));
      const uint64_t m = n + rng.NextBounded(3 * n);
      *desc = "erdos_renyi(n=" + std::to_string(n) +
              ", m=" + std::to_string(m) + ")";
      return *GenerateErdosRenyi(n, m, rng);
    }
    case 1: {
      const VertexId n = static_cast<VertexId>(10 + rng.NextBounded(40));
      const uint32_t d = static_cast<uint32_t>(2 + rng.NextBounded(3));
      *desc = "barabasi_albert(n=" + std::to_string(n) +
              ", d=" + std::to_string(d) + ")";
      return *GenerateBarabasiAlbert(n, d, rng);
    }
    case 2: {
      const VertexId n = static_cast<VertexId>(12 + rng.NextBounded(40));
      const uint32_t k = static_cast<uint32_t>(2 + rng.NextBounded(3));
      *desc = "small_world(n=" + std::to_string(n) +
              ", k=" + std::to_string(k) + ")";
      return *GenerateSmallWorld(n, k, 0.1, rng);
    }
    case 3: {
      const uint32_t r = static_cast<uint32_t>(3 + rng.NextBounded(4));
      const uint32_t c = static_cast<uint32_t>(3 + rng.NextBounded(4));
      *desc = "grid(" + std::to_string(r) + "x" + std::to_string(c) + ")";
      return *GenerateGrid(r, c);
    }
    case 4: {
      const VertexId n = static_cast<VertexId>(5 + rng.NextBounded(3));
      *desc = "complete(n=" + std::to_string(n) + ")";
      return *GenerateComplete(n);
    }
    case 5: {
      const VertexId n = static_cast<VertexId>(6 + rng.NextBounded(20));
      *desc = "path(n=" + std::to_string(n) + ")";
      return *GeneratePath(n);
    }
    default: {
      const VertexId n = static_cast<VertexId>(6 + rng.NextBounded(20));
      *desc = "cycle(n=" + std::to_string(n) + ")";
      return *GenerateCycle(n);
    }
  }
}

std::vector<PathQuery> RandomQueries(const Graph& g, Rng& rng,
                                     bool* invalid) {
  const size_t nq = rng.NextBounded(11);  // 0..10, empty batches included
  std::vector<PathQuery> queries;
  const VertexId n = g.NumVertices();
  while (queries.size() < nq) {
    if (!queries.empty() && rng.NextBounded(4) == 0) {
      // Clone (sometimes with a different k) to provoke sharing.
      PathQuery q = queries[rng.NextBounded(queries.size())];
      if (rng.NextBounded(2) == 0) q.k = 1 + static_cast<int>(rng.NextBounded(5));
      queries.push_back(q);
      continue;
    }
    const VertexId s = static_cast<VertexId>(rng.NextBounded(n));
    const VertexId t = static_cast<VertexId>(rng.NextBounded(n));
    if (s == t) continue;
    const int k = 1 + static_cast<int>(rng.NextBounded(5));
    queries.push_back({s, t, k});
  }
  *invalid = false;
  if (!queries.empty() && rng.NextBounded(10) == 0) {
    // Poison one query; every engine must reject the whole batch with the
    // same InvalidArgument, at every thread count.
    *invalid = true;
    PathQuery& q = queries[rng.NextBounded(queries.size())];
    switch (rng.NextBounded(4)) {
      case 0: q.t = q.s; break;                       // s == t
      case 1: q.k = 0; break;                         // k below range
      case 2: q.k = kMaxHops + 5; break;              // k above range
      default: q.s = n + 3; break;                    // endpoint off graph
    }
  }
  return queries;
}

BatchOptions RandomOptions(Rng& rng, bool* capped) {
  BatchOptions opt;
  const double gammas[] = {0.1, 0.3, 0.5, 0.8, 1.0};
  opt.gamma = gammas[rng.NextBounded(5)];
  opt.shared_pruning = rng.NextBounded(2) == 0 ? SharedPruning::kPerTarget
                                               : SharedPruning::kGlobalMin;
  const SimilarityMode modes[] = {SimilarityMode::kAuto,
                                  SimilarityMode::kExact,
                                  SimilarityMode::kSketch};
  opt.similarity_mode = modes[rng.NextBounded(3)];
  opt.disable_clustering = rng.NextBounded(8) == 0;
  opt.disable_cache_reuse = rng.NextBounded(8) == 0;
  opt.max_dominating_per_query = rng.NextBounded(4) == 0 ? 0.0 : 8.0;
  const int intra[] = {2, 4, 1 << 20};
  opt.intra_cluster_min_queries = intra[rng.NextBounded(3)];
  *capped = rng.NextBounded(8) == 0;
  if (*capped) opt.max_paths_per_query = 1 + rng.NextBounded(25);
  return opt;
}

void ExpectCountersEqual(const BatchStats& a, const BatchStats& b,
                         const std::string& what) {
  EXPECT_EQ(a.paths_emitted, b.paths_emitted) << what;
  EXPECT_EQ(a.edges_expanded, b.edges_expanded) << what;
  EXPECT_EQ(a.edges_pruned, b.edges_pruned) << what;
  EXPECT_EQ(a.join_probes, b.join_probes) << what;
  EXPECT_EQ(a.join_rejected, b.join_rejected) << what;
  EXPECT_EQ(a.join_index_rebuilds, b.join_index_rebuilds) << what;
  EXPECT_EQ(a.num_clusters, b.num_clusters) << what;
  EXPECT_EQ(a.sharing_nodes, b.sharing_nodes) << what;
  EXPECT_EQ(a.dominating_nodes, b.dominating_nodes) << what;
  EXPECT_EQ(a.shortcut_splices, b.shortcut_splices) << what;
  EXPECT_EQ(a.cached_paths, b.cached_paths) << what;
  EXPECT_EQ(a.cache_peak_vertices, b.cache_peak_vertices) << what;
}

void RunOneConfig(uint64_t seed) {
  Rng rng(seed);
  std::string graph_desc;
  Graph g = RandomGraph(rng, &graph_desc);
  bool invalid = false;
  std::vector<PathQuery> queries = RandomQueries(g, rng, &invalid);
  bool capped = false;
  BatchOptions opt = RandomOptions(rng, &capped);

  std::string desc = graph_desc + " |Q|=" + std::to_string(queries.size()) +
                     (invalid ? " [invalid-query]" : "") +
                     (capped ? " [max_paths=" +
                                   std::to_string(opt.max_paths_per_query) +
                                   "]"
                             : "");
  SCOPED_TRACE(desc);

  // Oracle: brute-force per query (skipped when the batch is poisoned or a
  // cap makes errors legitimate).
  std::vector<std::vector<std::vector<VertexId>>> oracle;
  if (!invalid && !capped) {
    for (const PathQuery& q : queries) {
      auto paths = BruteForcePaths(g, q);
      ASSERT_TRUE(paths.ok()) << paths.status();
      oracle.push_back(paths->ToSortedVectors());
    }
  }

  const struct {
    bool batch;
    bool optimized;
    const char* name;
  } kEngines[] = {{false, false, "basic"},
                  {false, true, "basic+"},
                  {true, false, "batch"},
                  {true, true, "batch+"}};
  for (const auto& engine : kEngines) {
    BatchOptions seq_opt = opt;
    seq_opt.num_threads = 1;
    EngineRun seq =
        RunEngine(g, queries, engine.batch, engine.optimized, seq_opt);

    if (invalid) {
      EXPECT_EQ(seq.status.code(), StatusCode::kInvalidArgument)
          << engine.name;
      EXPECT_TRUE(seq.events.empty()) << engine.name;
    } else if (!capped) {
      ASSERT_TRUE(seq.status.ok()) << engine.name << ": " << seq.status;
      RecordingSink replay;
      for (const auto& e : seq.events) {
        replay.OnPath(e.first, PathView{e.second.data(), e.second.size()});
      }
      for (size_t qi = 0; qi < queries.size(); ++qi) {
        EXPECT_EQ(replay.SortedPathsOf(qi), oracle[qi])
            << engine.name << " vs brute force, query " << qi << " "
            << queries[qi].ToString();
      }
    }

    for (int threads : {2, 8}) {
      BatchOptions par_opt = opt;
      par_opt.num_threads = threads;
      EngineRun par =
          RunEngine(g, queries, engine.batch, engine.optimized, par_opt);
      const std::string what =
          std::string(engine.name) + " threads=" + std::to_string(threads);
      // Error semantics are part of the determinism identity: same code,
      // same message, and the same pre-error emission stream.
      EXPECT_EQ(par.status.code(), seq.status.code()) << what;
      EXPECT_EQ(par.status.message(), seq.status.message()) << what;
      EXPECT_EQ(par.events, seq.events) << what;
      // Work counters only merge to the sequential totals on success: a
      // failed sequential run stops mid-subtree while parallel sub-tasks
      // stop at their own boundaries (docs/PARALLELISM.md).
      if (seq.status.ok() && par.status.ok()) {
        ExpectCountersEqual(seq.stats, par.stats, what);
      }
    }
  }
}

int ConfigCount() {
  const char* env = std::getenv("HCPATH_FUZZ_CONFIGS");
  if (env != nullptr) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 200;
}

/// Engine-reuse differential: one long-lived PathEngine runs a random
/// stream of micro-batches TWICE — the second pass fully warm (distance
/// cache populated, BatchContext recycled) — and every micro-batch must be
/// byte-identical (stream, Status code and message, work counters) to a
/// fresh one-shot Run{Batch,Basic}Enum call on the same queries. Covers
/// thread counts 1 and 4, invalid-input batches, and max_paths caps.
void RunOneEngineConfig(uint64_t seed) {
  Rng rng(seed);
  std::string graph_desc;
  Graph g = RandomGraph(rng, &graph_desc);
  bool invalid = false;
  std::vector<PathQuery> queries = RandomQueries(g, rng, &invalid);
  bool capped = false;
  BatchOptions opt = RandomOptions(rng, &capped);
  opt.num_threads = rng.NextBounded(2) == 0 ? 1 : 4;
  const bool batch_engine = rng.NextBounded(2) == 0;
  const bool optimized = rng.NextBounded(2) == 0;
  opt.algorithm = batch_engine
                      ? (optimized ? Algorithm::kBatchEnumPlus
                                   : Algorithm::kBatchEnum)
                      : (optimized ? Algorithm::kBasicEnumPlus
                                   : Algorithm::kBasicEnum);

  SCOPED_TRACE(graph_desc + " |Q|=" + std::to_string(queries.size()) +
               " engine=" + AlgorithmName(opt.algorithm) +
               " threads=" + std::to_string(opt.num_threads) +
               (invalid ? " [invalid-query]" : "") +
               (capped ? " [capped]" : ""));

  // Random micro-batch boundaries over the stream (empty batches allowed).
  std::vector<std::vector<PathQuery>> batches;
  for (size_t pos = 0; pos < queries.size();) {
    const size_t take =
        std::min(queries.size() - pos, 1 + rng.NextBounded(5));
    batches.emplace_back(queries.begin() + pos, queries.begin() + pos + take);
    pos += take;
  }
  if (batches.empty()) batches.emplace_back();

  PathEngineOptions engine_opt;
  engine_opt.batch = opt;
  engine_opt.max_wait_seconds = 0;  // RunBatch path only; no timer thread churn
  PathEngine engine(g, engine_opt);
  ASSERT_TRUE(engine.status().ok()) << engine.status();

  for (int pass = 0; pass < 2; ++pass) {
    SCOPED_TRACE(pass == 0 ? "cold pass" : "warm pass");
    for (size_t b = 0; b < batches.size(); ++b) {
      SCOPED_TRACE("micro-batch " + std::to_string(b));
      RecordingSink engine_sink;
      BatchStats engine_stats;
      Status engine_status =
          engine.RunBatch(batches[b], &engine_sink, &engine_stats);

      EngineRun oneshot =
          RunEngine(g, batches[b], batch_engine, optimized, opt);
      EXPECT_EQ(engine_status.code(), oneshot.status.code());
      EXPECT_EQ(engine_status.message(), oneshot.status.message());
      EXPECT_EQ(engine_sink.events(), oneshot.events);
      if (engine_status.ok() && oneshot.status.ok()) {
        ExpectCountersEqual(engine_stats, oneshot.stats, "engine vs one-shot");
      }
    }
  }
}

TEST(DifferentialFuzz, RandomizedCrossCheck) {
  // Fixed base so the suite is reproducible run to run; per-config seeds
  // are printed on failure and can be replayed alone via HCPATH_FUZZ_SEED.
  constexpr uint64_t kBaseSeed = 0x9E3779B97F4A7C15ull;
  if (const char* one = std::getenv("HCPATH_FUZZ_SEED")) {
    const uint64_t seed = std::strtoull(one, nullptr, 0);
    SCOPED_TRACE("HCPATH_FUZZ_SEED=" + std::to_string(seed));
    RunOneConfig(seed);
    return;
  }
  const int configs = ConfigCount();
  for (int c = 0; c < configs; ++c) {
    const uint64_t seed = kBaseSeed + static_cast<uint64_t>(c);
    SCOPED_TRACE("config #" + std::to_string(c) +
                 " — reproduce with HCPATH_FUZZ_SEED=" +
                 std::to_string(seed));
    RunOneConfig(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

/// Join-heavy differential: dense graphs with deep hop budgets and high
/// clone rates, so forward/backward halves are large (hf/hb up to 4/4),
/// midpoint buckets hold many candidates, and the join's stamped
/// disjointness + CSR bucket index dominate the run — the regime the
/// epoch-stamp kernels (docs/PERF.md) were rewritten for. Cross-checks
/// all four engines against BruteForce and seq vs threads {1, 4} for a
/// byte-identical stream and identical counters, max_paths caps included.
void RunOneJoinHeavyConfig(uint64_t seed) {
  Rng rng(seed);
  std::string graph_desc;
  Graph g = [&]() -> Graph {
    switch (rng.NextBounded(3)) {
      case 0: {
        const VertexId n = static_cast<VertexId>(6 + rng.NextBounded(3));
        graph_desc = "complete(n=" + std::to_string(n) + ")";
        return *GenerateComplete(n);
      }
      case 1: {
        const VertexId n = static_cast<VertexId>(14 + rng.NextBounded(16));
        const uint32_t d = static_cast<uint32_t>(4 + rng.NextBounded(3));
        graph_desc = "barabasi_albert(n=" + std::to_string(n) +
                     ", d=" + std::to_string(d) + ")";
        return *GenerateBarabasiAlbert(n, d, rng);
      }
      default: {
        const VertexId n = static_cast<VertexId>(12 + rng.NextBounded(12));
        graph_desc = "small_world(n=" + std::to_string(n) + ", k=4)";
        return *GenerateSmallWorld(n, 4, 0.3, rng);
      }
    }
  }();

  // Deep budgets (k in [5, 8] => hf/hb up to 4/4) and heavy cloning: many
  // queries share endpoints, so shared halves are reused across several
  // joins and path counts per query run high.
  const size_t nq = 3 + rng.NextBounded(8);
  std::vector<PathQuery> queries;
  const VertexId n = g.NumVertices();
  while (queries.size() < nq) {
    if (!queries.empty() && rng.NextBounded(3) == 0) {
      PathQuery q = queries[rng.NextBounded(queries.size())];
      if (rng.NextBounded(2) == 0) {
        q.k = 5 + static_cast<int>(rng.NextBounded(4));
      }
      queries.push_back(q);
      continue;
    }
    const VertexId s = static_cast<VertexId>(rng.NextBounded(n));
    const VertexId t = static_cast<VertexId>(rng.NextBounded(n));
    if (s == t) continue;
    queries.push_back({s, t, 5 + static_cast<int>(rng.NextBounded(4))});
  }

  bool capped = false;
  BatchOptions opt = RandomOptions(rng, &capped);
  // Dense graphs at k >= 5 explode; cap always, generously enough that
  // many configs still complete (both outcomes are interesting).
  opt.max_paths_per_query = 500 + rng.NextBounded(4000);

  SCOPED_TRACE(graph_desc + " |Q|=" + std::to_string(queries.size()) +
               " max_paths=" + std::to_string(opt.max_paths_per_query));

  std::vector<std::vector<std::vector<VertexId>>> oracle;
  for (const PathQuery& q : queries) {
    auto paths = BruteForcePaths(g, q);
    ASSERT_TRUE(paths.ok()) << paths.status();
    oracle.push_back(paths->ToSortedVectors());
  }

  const struct {
    bool batch;
    bool optimized;
    const char* name;
  } kEngines[] = {{false, false, "basic"},
                  {false, true, "basic+"},
                  {true, false, "batch"},
                  {true, true, "batch+"}};
  for (const auto& engine : kEngines) {
    BatchOptions seq_opt = opt;
    seq_opt.num_threads = 1;
    EngineRun seq =
        RunEngine(g, queries, engine.batch, engine.optimized, seq_opt);

    if (seq.status.ok()) {
      // The cap didn't trip (it also guards intermediate half-path
      // materialization, so success — not the oracle's path count — is
      // the signal), hence the engine enumerated everything and must
      // match the brute-force oracle.
      RecordingSink replay;
      for (const auto& e : seq.events) {
        replay.OnPath(e.first, PathView{e.second.data(), e.second.size()});
      }
      for (size_t qi = 0; qi < queries.size(); ++qi) {
        EXPECT_EQ(replay.SortedPathsOf(qi), oracle[qi])
            << engine.name << " vs brute force, query " << qi;
      }
    }

    for (int threads : {4}) {
      BatchOptions par_opt = opt;
      par_opt.num_threads = threads;
      EngineRun par =
          RunEngine(g, queries, engine.batch, engine.optimized, par_opt);
      const std::string what =
          std::string(engine.name) + " threads=" + std::to_string(threads);
      EXPECT_EQ(par.status.code(), seq.status.code()) << what;
      EXPECT_EQ(par.status.message(), seq.status.message()) << what;
      EXPECT_EQ(par.events, seq.events) << what;
      if (seq.status.ok() && par.status.ok()) {
        ExpectCountersEqual(seq.stats, par.stats, what);
      }
    }
  }
}

TEST(DifferentialFuzz, JoinHeavyCrossCheck) {
  // Separate seed base so the join-heavy sweep explores configurations
  // independent of the other two suites.
  constexpr uint64_t kBaseSeed = 0x6A015EEDB00F00ull;
  if (const char* one = std::getenv("HCPATH_FUZZ_SEED")) {
    const uint64_t seed = std::strtoull(one, nullptr, 0);
    SCOPED_TRACE("HCPATH_FUZZ_SEED=" + std::to_string(seed));
    RunOneJoinHeavyConfig(seed);
    return;
  }
  // Join-heavy configs enumerate far more paths per query than the random
  // sweep; a quarter of the config budget keeps wall-clock in line.
  const int configs = std::max(1, ConfigCount() / 4);
  for (int c = 0; c < configs; ++c) {
    const uint64_t seed = kBaseSeed + static_cast<uint64_t>(c);
    SCOPED_TRACE("join-heavy config #" + std::to_string(c) +
                 " — reproduce with HCPATH_FUZZ_SEED=" +
                 std::to_string(seed));
    RunOneJoinHeavyConfig(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

/// Multi-tenant admission differential: a random stream is submitted to a
/// weighted-fair-queue engine under randomized tenant weights and queue
/// budgets (both backpressure policies, shedding sometimes immediate) and
/// every query's outcome is checked against a fresh one-shot singleton
/// run: admitted queries must produce the identical sorted path set,
/// count, and OK Status regardless of tenant mix, batch composition, or
/// queue pressure; rejected queries must carry the identical
/// InvalidArgument; every other failure must be one of the two documented
/// admission-control Statuses. Also checks the admission conservation
/// laws: every submit ends in exactly one of
/// {completed, shed, fast-failed, rejected}, globally and per tenant.
void RunOneMultiTenantConfig(uint64_t seed) {
  Rng rng(seed);
  std::string graph_desc;
  Graph g = RandomGraph(rng, &graph_desc);
  bool invalid = false;
  std::vector<PathQuery> queries = RandomQueries(g, rng, &invalid);
  bool capped = false;
  BatchOptions opt = RandomOptions(rng, &capped);
  // No per-query caps here: a capped query legitimately fails its whole
  // micro-batch, whose composition depends on admission timing. Cap error
  // parity is covered by EngineMicroBatchParity's deterministic batches.
  opt.max_paths_per_query = 0;
  opt.num_threads = rng.NextBounded(2) == 0 ? 1 : 4;
  const bool batch_engine = rng.NextBounded(2) == 0;
  const bool optimized = rng.NextBounded(2) == 0;
  opt.algorithm = batch_engine
                      ? (optimized ? Algorithm::kBatchEnumPlus
                                   : Algorithm::kBatchEnum)
                      : (optimized ? Algorithm::kBasicEnumPlus
                                   : Algorithm::kBasicEnum);

  const size_t num_tenants = 1 + rng.NextBounded(4);
  PathEngineOptions engine_opt;
  engine_opt.batch = opt;
  engine_opt.max_wait_seconds = 0;  // deterministic cut modes only
  engine_opt.max_batch_size = 1 + rng.NextBounded(6);
  AdmissionOptions& adm = engine_opt.admission;
  const double weight_choices[] = {0.5, 1.0, 2.0, 4.0, 8.0};
  for (size_t t = 0; t < num_tenants; ++t) {
    adm.tenant_weights["t" + std::to_string(t)] =
        weight_choices[rng.NextBounded(5)];
  }
  const bool fail_fast = rng.NextBounded(2) == 0;
  if (fail_fast) {
    adm.backpressure = AdmissionBackpressure::kFailFast;
    adm.max_queued_queries = 2 + rng.NextBounded(8);
    if (rng.NextBounded(3) == 0) {
      // Tight byte budget too (~a few queued entries' worth).
      adm.max_queued_bytes = 200 + rng.NextBounded(2000);
    }
    adm.shed_low_watermark = 0.5;
    // Half the configs shed the moment the queue fills; the rest never.
    adm.shed_patience_seconds = rng.NextBounded(2) == 0 ? 0.0 : 1e6;
  } else {
    // Blocking submits make progress because the dispatcher's size cut
    // fires at max_batch_size <= the entry budget.
    adm.backpressure = AdmissionBackpressure::kBlock;
    adm.max_queued_queries = std::max<size_t>(
        engine_opt.max_batch_size,
        static_cast<size_t>(2 + rng.NextBounded(8)));
    adm.shed_patience_seconds = 1e6;
  }

  SCOPED_TRACE(graph_desc + " |Q|=" + std::to_string(queries.size()) +
               " engine=" + AlgorithmName(opt.algorithm) +
               " threads=" + std::to_string(opt.num_threads) +
               " tenants=" + std::to_string(num_tenants) +
               " window=" + std::to_string(engine_opt.max_batch_size) +
               " budget=" + std::to_string(adm.max_queued_queries) +
               (fail_fast ? " [fail-fast]" : " [block]") +
               (adm.shed_patience_seconds == 0 ? " [shed]" : "") +
               (invalid ? " [invalid-query]" : ""));

  PathEngine engine(g, engine_opt);
  ASSERT_TRUE(engine.status().ok()) << engine.status();

  struct Sub {
    PathQuery query;
    std::string tenant;
    std::future<QueryResult> future;
  };
  std::vector<Sub> subs;
  subs.reserve(queries.size());
  for (const PathQuery& q : queries) {
    Sub s;
    s.query = q;
    s.tenant = "t" + std::to_string(rng.NextBounded(num_tenants));
    subs.push_back(std::move(s));
  }
  for (Sub& s : subs) s.future = engine.Submit(s.tenant, s.query);
  engine.Flush();
  engine.Drain();

  for (Sub& s : subs) {
    SCOPED_TRACE("tenant " + s.tenant + " query " + s.query.ToString());
    QueryResult r = s.future.get();
    if (r.status.ok()) {
      // Admitted: byte-identical to an unloaded one-shot singleton run.
      EngineRun ref = RunEngine(g, {s.query}, batch_engine, optimized, opt);
      ASSERT_TRUE(ref.status.ok()) << ref.status;
      std::vector<std::vector<VertexId>> ref_paths;
      ref_paths.reserve(ref.events.size());
      for (const auto& e : ref.events) ref_paths.push_back(e.second);
      std::sort(ref_paths.begin(), ref_paths.end());
      EXPECT_EQ(r.path_count, ref_paths.size());
      EXPECT_EQ(r.paths.ToSortedVectors(), ref_paths);
    } else if (r.status.code() == StatusCode::kInvalidArgument) {
      // Rejected at admission: identical error to the one-shot call.
      EngineRun ref = RunEngine(g, {s.query}, batch_engine, optimized, opt);
      EXPECT_EQ(ref.status.code(), StatusCode::kInvalidArgument);
      EXPECT_EQ(r.status.message(), ref.status.message());
    } else {
      // Overload outcomes are limited to the documented vocabulary.
      EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted) << r.status;
      const bool shed = r.status.message().rfind(
                            "query shed by admission control", 0) == 0;
      const bool full =
          r.status.message().rfind("admission queue full", 0) == 0;
      EXPECT_TRUE(shed || full) << r.status;
    }
  }

  // Conservation: every submit landed in exactly one outcome bucket.
  PathEngineStats stats = engine.GetStats();
  EXPECT_EQ(stats.queries_completed + stats.queries_shed +
                stats.submits_fast_failed + stats.queries_rejected,
            subs.size());
  uint64_t tenant_submitted = 0;
  for (const auto& [tenant, ts] : stats.tenants) {
    SCOPED_TRACE("tenant " + tenant);
    EXPECT_EQ(ts.submitted, ts.admitted + ts.rejected + ts.fast_failed);
    EXPECT_EQ(ts.admitted, ts.completed + ts.shed);  // queue is drained
    tenant_submitted += ts.submitted;
  }
  EXPECT_EQ(tenant_submitted, subs.size());
  EXPECT_LE(stats.peak_queued_queries, adm.max_queued_queries);
}

TEST(DifferentialFuzz, EngineMultiTenantParity) {
  // Separate seed base so the multi-tenant sweep explores configurations
  // independent of the other suites.
  constexpr uint64_t kBaseSeed = 0xFA1209AC5EDB00ull;
  if (const char* one = std::getenv("HCPATH_FUZZ_SEED")) {
    const uint64_t seed = std::strtoull(one, nullptr, 0);
    SCOPED_TRACE("HCPATH_FUZZ_SEED=" + std::to_string(seed));
    RunOneMultiTenantConfig(seed);
    return;
  }
  // Each config also runs up to |Q| one-shot singleton references; a
  // quarter of the budget keeps wall-clock in line.
  const int configs = std::max(1, ConfigCount() / 4);
  for (int c = 0; c < configs; ++c) {
    const uint64_t seed = kBaseSeed + static_cast<uint64_t>(c);
    SCOPED_TRACE("multi-tenant config #" + std::to_string(c) +
                 " — reproduce with HCPATH_FUZZ_SEED=" +
                 std::to_string(seed));
    RunOneMultiTenantConfig(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

/// Remap parity differential: every configuration runs once over the
/// original vertex ids and once per renumbering (BFS order, degree order)
/// through the two remap-aware entry points — the BatchPathEnumerator
/// facade and a long-lived PathEngine (remap applied once at
/// construction, distance cache in the renumbered space). The renumbered
/// runs must be byte-identical in original ids: same emission stream,
/// same Status code and message (invalid-query batches included — queries
/// are validated against the original graph before translation), same
/// per-query counts, and identical work counters. Thread counts {1, 4},
/// all five algorithms, and all three probe kernels are in rotation.
struct FacadeRun {
  Status status;
  std::vector<RecordingSink::Event> events;
  std::vector<uint64_t> path_counts;
  BatchStats stats;
};

FacadeRun RunFacade(const Graph& g, const std::vector<PathQuery>& queries,
                    const BatchOptions& options) {
  FacadeRun run;
  RecordingSink sink;
  BatchPathEnumerator enumerator(g);
  auto result = enumerator.Run(queries, options, &sink);
  run.status = result.status();
  if (result.ok()) {
    run.path_counts = result->path_counts;
    run.stats = result->stats;
  }
  run.events = sink.events();
  return run;
}

void ExpectRunsEqual(const FacadeRun& remapped, const FacadeRun& base,
                     const std::string& what) {
  EXPECT_EQ(remapped.status.code(), base.status.code()) << what;
  EXPECT_EQ(remapped.status.message(), base.status.message()) << what;
  EXPECT_EQ(remapped.events, base.events)
      << what << ": emission streams diverge";
  EXPECT_EQ(remapped.path_counts, base.path_counts) << what;
  if (base.status.ok() && remapped.status.ok()) {
    ExpectCountersEqual(remapped.stats, base.stats, what);
  }
}

void RunOneRemapConfig(uint64_t seed) {
  Rng rng(seed);
  std::string graph_desc;
  Graph g = RandomGraph(rng, &graph_desc);
  bool invalid = false;
  std::vector<PathQuery> queries = RandomQueries(g, rng, &invalid);
  bool capped = false;
  BatchOptions opt = RandomOptions(rng, &capped);
  const Algorithm algos[] = {Algorithm::kPathEnum, Algorithm::kBasicEnum,
                             Algorithm::kBasicEnumPlus, Algorithm::kBatchEnum,
                             Algorithm::kBatchEnumPlus};
  opt.algorithm = algos[rng.NextBounded(5)];
  const KernelMode kernels[] = {KernelMode::kAuto, KernelMode::kStamped,
                                KernelMode::kNaive};
  opt.kernel_mode = kernels[rng.NextBounded(3)];

  SCOPED_TRACE(graph_desc + " |Q|=" + std::to_string(queries.size()) +
               " algo=" + AlgorithmName(opt.algorithm) +
               " kernel=" + KernelModeName(opt.kernel_mode) +
               (invalid ? " [invalid-query]" : "") +
               (capped ? " [capped]" : ""));

  for (int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    opt.num_threads = threads;

    BatchOptions base_opt = opt;
    base_opt.remap_mode = RemapMode::kNone;
    const FacadeRun base = RunFacade(g, queries, base_opt);

    // The engine baseline is a separate reference: for kPathEnum the
    // facade validates per query inside the loop while the engine
    // validates the whole batch up front, so their invalid-batch streams
    // legitimately differ. Remap must preserve each entry point's own
    // behavior exactly.
    auto run_engine = [&](RemapMode mode) {
      BatchOptions eopt = opt;
      eopt.remap_mode = mode;
      PathEngineOptions engine_opt;
      engine_opt.batch = eopt;
      engine_opt.max_wait_seconds = 0;
      PathEngine engine(g, engine_opt);
      EXPECT_TRUE(engine.status().ok()) << engine.status();
      FacadeRun run;
      RecordingSink sink;
      run.status = engine.RunBatch(queries, &sink, &run.stats);
      run.events = sink.events();
      return run;
    };
    const FacadeRun engine_base = run_engine(RemapMode::kNone);

    for (RemapMode mode : {RemapMode::kBfs, RemapMode::kDegree}) {
      SCOPED_TRACE(std::string("remap=") + RemapModeName(mode));
      BatchOptions remap_opt = opt;
      remap_opt.remap_mode = mode;
      ExpectRunsEqual(RunFacade(g, queries, remap_opt), base, "facade");
      ExpectRunsEqual(run_engine(mode), engine_base, "engine");
    }
  }
}

TEST(DifferentialFuzz, RemapParity) {
  // Separate seed base so the remap sweep explores configurations
  // independent of the other suites.
  constexpr uint64_t kBaseSeed = 0x8A5CF7D21E0B43ull;
  if (const char* one = std::getenv("HCPATH_FUZZ_SEED")) {
    const uint64_t seed = std::strtoull(one, nullptr, 0);
    SCOPED_TRACE("HCPATH_FUZZ_SEED=" + std::to_string(seed));
    RunOneRemapConfig(seed);
    return;
  }
  // Each config runs 6 facade + 6 engine sweeps (threads x remap modes);
  // a quarter of the config budget keeps wall-clock in line.
  const int configs = std::max(1, ConfigCount() / 4);
  for (int c = 0; c < configs; ++c) {
    const uint64_t seed = kBaseSeed + static_cast<uint64_t>(c);
    SCOPED_TRACE("remap config #" + std::to_string(c) +
                 " — reproduce with HCPATH_FUZZ_SEED=" +
                 std::to_string(seed));
    RunOneRemapConfig(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

/// Update-interleaved differential (docs/DYNAMIC.md): a store-backed
/// engine serves random micro-batches interleaved with randomized
/// Add/Remove update batches. Each phase randomly updates BEFORE or AFTER
/// flushing the queued queries, so queries regularly run on snapshots that
/// are no longer current. Checks, per seeded config and at threads
/// {1, 4}:
///   * every query's sorted path set equals the brute-force oracle on
///     exactly the snapshot stamped into its result (admitted-snapshot
///     parity: updates landing while a query is queued or running never
///     leak into it),
///   * each ApplyUpdates result is structurally identical to a
///     from-scratch Build over a shadow edge set replaying the same batch
///     (CSR merge vs rebuild equivalence),
///   * the endpoint cache never serves a stale map (implied by parity, at
///     full cache warmth across phases),
///   * the delta-overlay compaction policy is invisible: the identical
///     phase stream replayed at thresholds 0 (always rebuild), 0.5
///     (extend, then fold mid-stream), and never-compact produces
///     byte-identical per-query results.
void RunOneUpdateInterleavedConfig(uint64_t seed) {
  Rng rng(seed);
  std::string graph_desc;
  const Graph seed_graph = RandomGraph(rng, &graph_desc);
  bool capped = false;
  BatchOptions opt = RandomOptions(rng, &capped);
  opt.max_paths_per_query = 0;  // caps fail whole micro-batches; not here
  const Algorithm algos[] = {Algorithm::kPathEnum, Algorithm::kBasicEnum,
                             Algorithm::kBasicEnumPlus, Algorithm::kBatchEnum,
                             Algorithm::kBatchEnumPlus};
  opt.algorithm = algos[rng.NextBounded(5)];
  const size_t num_phases = 2 + rng.NextBounded(4);

  // (epoch, count, sorted paths) per query, in submission order — the
  // cross-threshold byte-identity fingerprint.
  using Fingerprint =
      std::vector<std::tuple<uint64_t, uint64_t,
                             std::vector<std::vector<VertexId>>>>;

  for (int threads : {1, 4}) {
    opt.num_threads = threads;
    Fingerprint baseline;
    for (const double threshold : {0.0, 0.5, 1e9}) {
    SCOPED_TRACE(graph_desc + " algo=" + AlgorithmName(opt.algorithm) +
                 " phases=" + std::to_string(num_phases) +
                 " threads=" + std::to_string(threads) +
                 " compaction_threshold=" + std::to_string(threshold));

    GraphStore store(seed_graph,
                     GraphStoreOptions{.compaction_threshold = threshold});
    PathEngineOptions engine_opt;
    engine_opt.batch = opt;
    engine_opt.max_wait_seconds = 0;  // cuts on Flush only: queries queue
    engine_opt.max_batch_size = 1024;
    PathEngine engine(&store, engine_opt);
    ASSERT_TRUE(engine.status().ok()) << engine.status();

    // Shadow state: the edge set the store must be equivalent to, and a
    // from-scratch graph per epoch for the parity oracle.
    std::vector<std::pair<VertexId, VertexId>> shadow = seed_graph.Edges();
    VertexId shadow_n = seed_graph.NumVertices();
    std::map<uint64_t, Graph> at_epoch;
    at_epoch.emplace(0, seed_graph);

    std::vector<std::pair<PathQuery, std::future<QueryResult>>> pending;
    // Deterministic per-thread-count replay: reseed the phase stream so
    // both thread counts see identical phases.
    Rng phase_rng(seed ^ 0xABCDEF12345ull);
    for (size_t phase = 0; phase < num_phases; ++phase) {
      // Queries against the current shadow graph's id space.
      const Graph& current = at_epoch.rbegin()->second;
      const size_t nq = phase_rng.NextBounded(6);
      for (size_t i = 0; i < nq; ++i) {
        const VertexId n = current.NumVertices();
        const VertexId s = static_cast<VertexId>(phase_rng.NextBounded(n));
        const VertexId t = static_cast<VertexId>(phase_rng.NextBounded(n));
        if (s == t) continue;
        const PathQuery q{s, t, 1 + static_cast<int>(phase_rng.NextBounded(5))};
        pending.emplace_back(q, engine.Submit(q));
      }

      // Half the phases flush before updating (queries run on the epoch
      // they pinned, trivially current); half update first, so queued
      // queries run on a superseded snapshot and would expose any
      // pin/invalidation bug.
      const bool update_first = phase_rng.NextBounded(2) == 0;
      if (!update_first) {
        engine.Flush();
        engine.Drain();
      }

      // Random update batch, sometimes growing the id space.
      std::vector<EdgeUpdate> batch;
      const size_t nu = 1 + phase_rng.NextBounded(8);
      for (size_t i = 0; i < nu; ++i) {
        const VertexId u =
            static_cast<VertexId>(phase_rng.NextBounded(shadow_n + 2));
        const VertexId v =
            static_cast<VertexId>(phase_rng.NextBounded(shadow_n + 2));
        batch.push_back(phase_rng.NextBounded(2) == 0
                            ? EdgeUpdate::Add(u, v)
                            : EdgeUpdate::Remove(u, v));
      }
      auto applied = engine.ApplyUpdates(batch);
      ASSERT_TRUE(applied.status().ok()) << applied.status();

      // Replay onto the shadow edge set, modeling the documented
      // semantics: collapse to the LAST op per (u, v) first, then apply —
      // an add netted out by a later remove must not grow the id space.
      std::map<std::pair<VertexId, VertexId>, EdgeUpdate::Op> last;
      for (const EdgeUpdate& u : batch) last[{u.u, u.v}] = u.op;
      for (const auto& [e, op] : last) {
        shadow.erase(std::remove(shadow.begin(), shadow.end(), e),
                     shadow.end());
        if (op == EdgeUpdate::Op::kAddEdge && e.first != e.second) {
          shadow.push_back(e);
          shadow_n = std::max(shadow_n, static_cast<VertexId>(
                                            std::max(e.first, e.second) + 1));
        }
      }
      const Graph& updated = applied->snapshot->graph;
      GraphBuilder rebuild(shadow_n);
      for (const auto& e : shadow) rebuild.AddEdge(e.first, e.second);
      const Graph rebuilt = *rebuild.Build();
      ASSERT_EQ(updated.NumVertices(), rebuilt.NumVertices())
          << "phase " << phase;
      ASSERT_EQ(updated.Edges(), rebuilt.Edges())
          << "ApplyUpdates CSR diverges from from-scratch Build, phase "
          << phase;
      at_epoch.emplace(applied->snapshot->epoch, updated);

      if (update_first) {
        engine.Flush();
        engine.Drain();
      }
    }
    engine.Flush();
    engine.Drain();

    Fingerprint fp;
    for (auto& [q, f] : pending) {
      QueryResult r = f.get();
      SCOPED_TRACE("query " + q.ToString() + " epoch " +
                   std::to_string(r.graph_epoch));
      ASSERT_TRUE(r.status.ok()) << r.status;
      auto it = at_epoch.find(r.graph_epoch);
      ASSERT_NE(it, at_epoch.end());
      auto oracle = BruteForcePaths(it->second, q);
      ASSERT_TRUE(oracle.ok()) << oracle.status();
      EXPECT_EQ(r.path_count, oracle->size());
      EXPECT_EQ(r.paths.ToSortedVectors(), oracle->ToSortedVectors());
      fp.emplace_back(r.graph_epoch, r.path_count, r.paths.ToSortedVectors());
    }
    pending.clear();

    // The overlay seam must be invisible: whatever the compaction policy
    // did (never extend / fold mid-stream / chain forever), every query's
    // (epoch, count, paths) matches the always-rebuild baseline exactly.
    if (threshold == 0.0) {
      baseline = std::move(fp);
    } else {
      ASSERT_EQ(fp, baseline)
          << "results diverge across compaction thresholds";
    }
    }  // threshold sweep
  }
}

TEST(DifferentialFuzz, UpdateInterleavedParity) {
  // Separate seed base so the dynamic-graph sweep explores configurations
  // independent of the other suites.
  constexpr uint64_t kBaseSeed = 0xDECADE0FCAB1E5ull;
  if (const char* one = std::getenv("HCPATH_FUZZ_SEED")) {
    const uint64_t seed = std::strtoull(one, nullptr, 0);
    SCOPED_TRACE("HCPATH_FUZZ_SEED=" + std::to_string(seed));
    RunOneUpdateInterleavedConfig(seed);
    return;
  }
  // Each config replays its phase stream at two thread counts; half the
  // budget (>= 100 configs at the default 200) keeps wall-clock in line.
  const int configs = std::max(1, ConfigCount() / 2);
  for (int c = 0; c < configs; ++c) {
    const uint64_t seed = kBaseSeed + static_cast<uint64_t>(c);
    SCOPED_TRACE("update-interleaved config #" + std::to_string(c) +
                 " — reproduce with HCPATH_FUZZ_SEED=" +
                 std::to_string(seed));
    RunOneUpdateInterleavedConfig(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(DifferentialFuzz, EngineMicroBatchParity) {
  // Separate seed base from RandomizedCrossCheck so the two suites explore
  // independent configurations. HCPATH_FUZZ_SEED replays a single printed
  // seed through this suite's config runner.
  constexpr uint64_t kBaseSeed = 0xD1B54A32D192ED03ull;
  if (const char* one = std::getenv("HCPATH_FUZZ_SEED")) {
    const uint64_t seed = std::strtoull(one, nullptr, 0);
    SCOPED_TRACE("HCPATH_FUZZ_SEED=" + std::to_string(seed));
    RunOneEngineConfig(seed);
    return;
  }
  // Engine configs run the batch list twice (cold + warm), so half the
  // count keeps the suite's wall-clock in line with RandomizedCrossCheck.
  const int configs = std::max(1, ConfigCount() / 2);
  for (int c = 0; c < configs; ++c) {
    const uint64_t seed = kBaseSeed + static_cast<uint64_t>(c);
    SCOPED_TRACE("engine config #" + std::to_string(c) +
                 " — reproduce with HCPATH_FUZZ_SEED=" +
                 std::to_string(seed));
    RunOneEngineConfig(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

void CheckShardedConservation(const ShardedServiceStats& s,
                              const std::string& what) {
  EXPECT_EQ(s.queries_submitted,
            s.queries_completed + s.queries_failed + s.queries_rejected)
      << what;
  EXPECT_EQ(s.dispatches, s.attempts_completed + s.attempts_failed +
                              s.attempts_cancelled + s.attempts_dropped +
                              s.attempts_in_flight)
      << what;
  EXPECT_EQ(s.attempts_in_flight, 0u) << what;
  EXPECT_EQ(s.queries_stalled, 0u) << what;
}

/// Sharded fault-parity differential (docs/SHARDING.md): the same random
/// query batch runs through a 1-shard no-fault ShardedPathService (the
/// oracle) and through sharded services (1, 2, 4 shards; 1 and 4 batch
/// threads) under a random fault schedule (crash, hang, drop-reply, slow,
/// fail-N) with retries and sometimes hedging enabled. For every query
/// that completes, the materialized path set must equal the oracle's; a
/// query the supervisor gives up on must carry the canonical retryable
/// shard-unavailable status; and both conservation laws must close with
/// zero stalled queries — faults may fail queries, never corrupt or
/// strand them.
void RunOneShardedConfig(uint64_t seed) {
  Rng rng(seed);
  std::string graph_desc;
  Graph g = RandomGraph(rng, &graph_desc);
  bool invalid = false;
  std::vector<PathQuery> queries = RandomQueries(g, rng, &invalid);
  bool capped = false;
  const BatchOptions batch = RandomOptions(rng, &capped);

  ShardedServiceOptions base;
  base.batch = batch;
  base.batch.num_threads = 1;
  base.service_time_seconds = 0.015625;      // 1/64
  base.heartbeat_interval_seconds = 0.0625;  // 1/16
  base.suspect_after_missed = 2;
  base.down_after_missed = 4;
  base.restart_delay_seconds = 0.125;
  base.restart_duration_seconds = 0.25;
  base.retry_backoff_seconds = 0.0625;
  // Attempt timeouts stay on: they are the only detection path for
  // drop-reply faults, and queries_stalled == 0 is asserted below.
  base.attempt_timeout_seconds = 0.5;
  base.seed = seed;

  // Oracle: one shard, no faults, sinkless so paths materialize.
  VirtualClock ref_clock;
  ShardedPathService reference(&g, base, &ref_clock);
  ASSERT_TRUE(reference.init_status().ok());
  auto ref_futures = reference.SubmitBatch("t", queries, nullptr);
  reference.RunToCompletion(&ref_clock);
  std::vector<QueryResult> oracle;
  oracle.reserve(ref_futures.size());
  for (auto& f : ref_futures) oracle.push_back(f.get());
  CheckShardedConservation(reference.GetStats(), "oracle");

  for (int shards : {1, 2, 4}) {
    ShardedServiceOptions opt = base;
    opt.num_shards = shards;
    opt.batch.num_threads = rng.NextBounded(2) == 0 ? 1 : 4;
    opt.routing = rng.NextBounded(2) == 0 ? RoutingPolicy::kHash
                                          : RoutingPolicy::kRoundRobin;
    opt.max_retries = 1 + static_cast<int>(rng.NextBounded(3));
    opt.retry_jitter_fraction = 0.25;  // jitter must not affect results
    opt.enable_hedging = rng.NextBounded(2) == 0;
    opt.hedge_after_seconds = 0.03125;
    opt.hedge_min_samples = 4;

    // Random fault schedule over the real shard count.
    FaultInjector injector;
    const size_t num_rules = rng.NextBounded(4);  // 0..3, inert included
    std::string schedule;
    for (size_t r = 0; r < num_rules; ++r) {
      FaultRule rule;
      rule.shard = static_cast<int>(rng.NextBounded(shards));
      rule.at_dispatch = rng.NextBounded(8);
      rule.count = 1 + rng.NextBounded(3);
      rule.kind = static_cast<FaultKind>(rng.NextBounded(5));
      rule.seconds = 0.0625 * static_cast<double>(1 + rng.NextBounded(4));
      rule.factor = static_cast<double>(2 + rng.NextBounded(7));
      injector.AddRule(rule);
      schedule += std::string(FaultKindName(rule.kind)) + "@" +
                  std::to_string(rule.shard) + " ";
    }
    SCOPED_TRACE("shards=" + std::to_string(shards) +
                 " threads=" + std::to_string(opt.batch.num_threads) +
                 " hedging=" + std::to_string(opt.enable_hedging) +
                 " faults=[" + schedule + "] graph=" + graph_desc);

    VirtualClock vc;
    ShardedPathService svc(&g, opt, &vc, &injector);
    ASSERT_TRUE(svc.init_status().ok());
    auto futures = svc.SubmitBatch("t", queries, nullptr);
    svc.RunToCompletion(&vc);
    ASSERT_EQ(futures.size(), oracle.size());
    for (size_t i = 0; i < futures.size(); ++i) {
      SCOPED_TRACE("query " + std::to_string(i));
      QueryResult r = futures[i].get();
      if (r.status.ok()) {
        // A completed query is byte-equivalent to the oracle, whatever
        // faults its attempts absorbed along the way.
        ASSERT_TRUE(oracle[i].status.ok()) << r.status;
        EXPECT_EQ(r.path_count, oracle[i].path_count);
        EXPECT_EQ(r.paths.ToSortedVectors(), oracle[i].paths.ToSortedVectors());
      } else if (!oracle[i].status.ok()) {
        // Deterministic pipeline/validation errors (invalid query,
        // max_paths cap) reproduce exactly — code and message.
        EXPECT_EQ(r.status.code(), oracle[i].status.code());
        EXPECT_EQ(r.status.message(), oracle[i].status.message());
      } else {
        // Fault-induced degradation: canonical, retryable, attributable.
        EXPECT_TRUE(IsShardUnavailable(r.status)) << r.status.ToString();
        EXPECT_TRUE(r.status.retryable());
      }
    }
    CheckShardedConservation(svc.GetStats(), "faulted");
  }
}

TEST(DifferentialFuzz, ShardedFaultParity) {
  // Separate seed base so this suite explores configurations independent
  // of the other differential suites.
  constexpr uint64_t kBaseSeed = 0x9E6C63D0876A9A47ull;
  if (const char* one = std::getenv("HCPATH_FUZZ_SEED")) {
    const uint64_t seed = std::strtoull(one, nullptr, 0);
    SCOPED_TRACE("HCPATH_FUZZ_SEED=" + std::to_string(seed));
    RunOneShardedConfig(seed);
    return;
  }
  // Each config runs a full virtual-time simulation at three shard
  // counts; a quarter of the count keeps wall-clock in line with the
  // other suites.
  const int configs = std::max(1, ConfigCount() / 4);
  for (int c = 0; c < configs; ++c) {
    const uint64_t seed = kBaseSeed + static_cast<uint64_t>(c);
    SCOPED_TRACE("sharded config #" + std::to_string(c) +
                 " — reproduce with HCPATH_FUZZ_SEED=" +
                 std::to_string(seed));
    RunOneShardedConfig(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace hcpath
