#include "util/arena.h"

#include <gtest/gtest.h>

#include <cstring>

namespace hcpath {
namespace {

TEST(Arena, AllocationsAreWritable) {
  Arena arena;
  char* p = static_cast<char*>(arena.Allocate(100));
  std::memset(p, 0xAB, 100);
  EXPECT_EQ(static_cast<unsigned char>(p[99]), 0xAB);
}

TEST(Arena, AlignmentRespected) {
  Arena arena;
  for (size_t align : {1ul, 2ul, 4ul, 8ul, 16ul, 64ul}) {
    void* p = arena.Allocate(3, align);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u);
  }
}

TEST(Arena, LargeAllocationGetsDedicatedChunk) {
  Arena arena(1024);
  void* p = arena.Allocate(1 << 20);
  ASSERT_NE(p, nullptr);
  EXPECT_GE(arena.bytes_reserved(), 1u << 20);
}

TEST(Arena, ManySmallAllocationsDontOverlap) {
  Arena arena(256);
  std::vector<int*> ptrs;
  for (int i = 0; i < 1000; ++i) {
    int* p = arena.AllocateArray<int>(4);
    p[0] = i;
    ptrs.push_back(p);
  }
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(ptrs[i][0], i);
}

TEST(Arena, AccountingTracksUsage) {
  Arena arena;
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  arena.Allocate(64);
  arena.Allocate(64);
  EXPECT_GE(arena.bytes_allocated(), 128u);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_allocated());
}

TEST(Arena, ClearReleasesEverything) {
  Arena arena;
  arena.Allocate(1000);
  arena.Clear();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), 0u);
  // Usable again after clear.
  void* p = arena.Allocate(16);
  EXPECT_NE(p, nullptr);
}

TEST(Arena, ZeroByteAllocationIsValid) {
  Arena arena;
  void* a = arena.Allocate(0);
  void* b = arena.Allocate(0);
  EXPECT_NE(a, nullptr);
  EXPECT_NE(b, nullptr);
  EXPECT_NE(a, b);  // each zero-size allocation still gets a unique byte
}

}  // namespace
}  // namespace hcpath
