#include "graph/edge_list_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "graph/generators.h"
#include "util/rng.h"

namespace hcpath {
namespace {

TEST(EdgeListIO, TextRoundTrip) {
  Rng rng(1);
  auto g = GenerateErdosRenyi(50, 200, rng);
  std::string path = ::testing::TempDir() + "/g.txt";
  ASSERT_TRUE(SaveEdgeListText(*g, path).ok());
  auto loaded = LoadEdgeListText(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->Edges(), g->Edges());
  std::remove(path.c_str());
}

TEST(EdgeListIO, BinaryRoundTrip) {
  Rng rng(2);
  auto g = GenerateErdosRenyi(80, 400, rng);
  std::string path = ::testing::TempDir() + "/g.bin";
  ASSERT_TRUE(SaveEdgeListBinary(*g, path).ok());
  auto loaded = LoadEdgeListBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->Edges(), g->Edges());
  EXPECT_EQ(loaded->NumVertices(), g->NumVertices());
  std::remove(path.c_str());
}

TEST(EdgeListIO, TextAcceptsCommentsAndTabs) {
  std::string path = ::testing::TempDir() + "/snap.txt";
  {
    std::ofstream out(path);
    out << "# SNAP comment\n% another comment\n0\t1\n1 2\n\n2\t0\n";
  }
  auto g = LoadEdgeListText(path);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->NumEdges(), 3u);
  EXPECT_TRUE(g->HasEdge(1, 2));
  std::remove(path.c_str());
}

TEST(EdgeListIO, TextRejectsMalformedLine) {
  std::string path = ::testing::TempDir() + "/bad.txt";
  {
    std::ofstream out(path);
    out << "0 1\nnot_an_edge\n";
  }
  EXPECT_FALSE(LoadEdgeListText(path).ok());
  std::remove(path.c_str());
}

TEST(EdgeListIO, MissingFileIsIOError) {
  auto g = LoadEdgeListText("/no/such/file.txt");
  EXPECT_EQ(g.status().code(), StatusCode::kIOError);
  auto gb = LoadEdgeListBinary("/no/such/file.bin");
  EXPECT_EQ(gb.status().code(), StatusCode::kIOError);
}

TEST(EdgeListIO, BinaryRejectsGarbage) {
  std::string path = ::testing::TempDir() + "/garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a graph";
  }
  EXPECT_FALSE(LoadEdgeListBinary(path).ok());
  std::remove(path.c_str());
}

// --- Header-hardening cases (PR 10): a corrupt 24-byte header must fail
// --- with a clean Status before it can size any allocation.

constexpr uint64_t kMagic = 0x48435041544847ULL;  // keep in sync with the .cc

/// Writes a binary edge-list file with an arbitrary (possibly lying)
/// header and `edges.size()` payload edges.
void WriteBinaryFile(const std::string& path, uint64_t n, uint64_t m,
                     const std::vector<std::pair<VertexId, VertexId>>& edges) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  uint64_t magic = kMagic;
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&m), sizeof(m));
  for (auto [u, v] : edges) {
    VertexId pair[2] = {u, v};
    out.write(reinterpret_cast<const char*>(pair), sizeof(pair));
  }
}

TEST(EdgeListIO, BinaryRejectsOversizedEdgeCount) {
  // Header claims 2^40 edges over an 8-byte payload: must be rejected
  // without attempting Reserve(2^40).
  std::string path = ::testing::TempDir() + "/bad_m.bin";
  WriteBinaryFile(path, 10, uint64_t{1} << 40, {{0, 1}});
  auto g = LoadEdgeListBinary(path);
  EXPECT_EQ(g.status().code(), StatusCode::kInvalidArgument) << g.status();
  std::remove(path.c_str());
}

TEST(EdgeListIO, BinaryRejectsOversizedVertexCount) {
  // n = 0xF0000000 (< kInvalidVertex, so the old check passed it) with one
  // edge: wildly inconsistent with the payload, must not size
  // GraphBuilder(n).
  std::string path = ::testing::TempDir() + "/bad_n.bin";
  WriteBinaryFile(path, 0xF0000000ULL, 1, {{0, 1}});
  auto g = LoadEdgeListBinary(path);
  EXPECT_EQ(g.status().code(), StatusCode::kInvalidArgument) << g.status();
  std::remove(path.c_str());
}

TEST(EdgeListIO, BinaryRejectsTruncatedPayload) {
  // Header says 3 edges, payload has 1.
  std::string path = ::testing::TempDir() + "/trunc.bin";
  WriteBinaryFile(path, 10, 3, {{0, 1}});
  auto g = LoadEdgeListBinary(path);
  EXPECT_EQ(g.status().code(), StatusCode::kInvalidArgument) << g.status();
  std::remove(path.c_str());
}

TEST(EdgeListIO, BinaryRejectsTrailingBytes) {
  // Payload longer than 8*m is rejected too: a well-formed writer never
  // produces trailing bytes, and accepting them would mask a corrupted
  // edge count.
  std::string path = ::testing::TempDir() + "/trailing.bin";
  WriteBinaryFile(path, 10, 1, {{0, 1}, {1, 2}});
  auto g = LoadEdgeListBinary(path);
  EXPECT_EQ(g.status().code(), StatusCode::kInvalidArgument) << g.status();
  std::remove(path.c_str());
}

TEST(EdgeListIO, BinaryAllowsIsolatedVertices) {
  // n beyond the largest endpoint is legitimate (isolated tail vertices)
  // and must round-trip exactly.
  std::string path = ::testing::TempDir() + "/isolated.bin";
  WriteBinaryFile(path, 100, 2, {{0, 1}, {1, 2}});
  auto g = LoadEdgeListBinary(path);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->NumVertices(), 100u);
  EXPECT_EQ(g->NumEdges(), 2u);
  std::remove(path.c_str());
}

TEST(EdgeListIO, SaveUnwritablePathIsIOError) {
  Rng rng(3);
  auto g = GenerateErdosRenyi(10, 20, rng);
  EXPECT_EQ(SaveEdgeListBinary(*g, "/no/such/dir/g.bin").code(),
            StatusCode::kIOError);
  EXPECT_EQ(SaveEdgeListText(*g, "/no/such/dir/g.txt").code(),
            StatusCode::kIOError);
}

TEST(EdgeListIO, BinarySaveBatchedBytesGolden) {
  // The batched writer must produce byte-identical output to the
  // documented format: header then (u, v) pairs in CSR order. Build the
  // expected bytes by hand and compare the whole file.
  Rng rng(4);
  auto g = GenerateErdosRenyi(60, 300, rng);
  std::string path = ::testing::TempDir() + "/golden.bin";
  ASSERT_TRUE(SaveEdgeListBinary(*g, path).ok());

  std::string expected;
  auto append = [&expected](const void* p, size_t len) {
    expected.append(static_cast<const char*>(p), len);
  };
  uint64_t magic = kMagic, n = g->NumVertices(), m = g->NumEdges();
  append(&magic, 8);
  append(&n, 8);
  append(&m, 8);
  for (auto [u, v] : g->Edges()) {
    VertexId pair[2] = {u, v};
    append(pair, sizeof(pair));
  }

  std::ifstream in(path, std::ios::binary);
  std::string actual((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
  EXPECT_EQ(actual, expected);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hcpath
