#include "graph/edge_list_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "graph/generators.h"
#include "util/rng.h"

namespace hcpath {
namespace {

TEST(EdgeListIO, TextRoundTrip) {
  Rng rng(1);
  auto g = GenerateErdosRenyi(50, 200, rng);
  std::string path = ::testing::TempDir() + "/g.txt";
  ASSERT_TRUE(SaveEdgeListText(*g, path).ok());
  auto loaded = LoadEdgeListText(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->Edges(), g->Edges());
  std::remove(path.c_str());
}

TEST(EdgeListIO, BinaryRoundTrip) {
  Rng rng(2);
  auto g = GenerateErdosRenyi(80, 400, rng);
  std::string path = ::testing::TempDir() + "/g.bin";
  ASSERT_TRUE(SaveEdgeListBinary(*g, path).ok());
  auto loaded = LoadEdgeListBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->Edges(), g->Edges());
  EXPECT_EQ(loaded->NumVertices(), g->NumVertices());
  std::remove(path.c_str());
}

TEST(EdgeListIO, TextAcceptsCommentsAndTabs) {
  std::string path = ::testing::TempDir() + "/snap.txt";
  {
    std::ofstream out(path);
    out << "# SNAP comment\n% another comment\n0\t1\n1 2\n\n2\t0\n";
  }
  auto g = LoadEdgeListText(path);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->NumEdges(), 3u);
  EXPECT_TRUE(g->HasEdge(1, 2));
  std::remove(path.c_str());
}

TEST(EdgeListIO, TextRejectsMalformedLine) {
  std::string path = ::testing::TempDir() + "/bad.txt";
  {
    std::ofstream out(path);
    out << "0 1\nnot_an_edge\n";
  }
  EXPECT_FALSE(LoadEdgeListText(path).ok());
  std::remove(path.c_str());
}

TEST(EdgeListIO, MissingFileIsIOError) {
  auto g = LoadEdgeListText("/no/such/file.txt");
  EXPECT_EQ(g.status().code(), StatusCode::kIOError);
  auto gb = LoadEdgeListBinary("/no/such/file.bin");
  EXPECT_EQ(gb.status().code(), StatusCode::kIOError);
}

TEST(EdgeListIO, BinaryRejectsGarbage) {
  std::string path = ::testing::TempDir() + "/garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a graph";
  }
  EXPECT_FALSE(LoadEdgeListBinary(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hcpath
