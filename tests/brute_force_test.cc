#include "core/brute_force.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "test_graphs.h"

namespace hcpath {
namespace {

TEST(BruteForce, PathGraphHasExactlyOnePath) {
  auto g = GeneratePath(5);
  auto paths = BruteForcePaths(*g, {0, 4, 4});
  ASSERT_TRUE(paths.ok());
  ASSERT_EQ(paths->size(), 1u);
  EXPECT_EQ(paths->Length(0), 4u);
}

TEST(BruteForce, HopConstraintCutsOff) {
  auto g = GeneratePath(5);
  auto paths = BruteForcePaths(*g, {0, 4, 3});
  ASSERT_TRUE(paths.ok());
  EXPECT_EQ(paths->size(), 0u);
}

TEST(BruteForce, GridPathCountIsBinomial) {
  // On a 3x3 east/south grid, monotone paths corner to corner = C(4,2) = 6,
  // all of length exactly 4.
  auto g = GenerateGrid(3, 3);
  auto paths = BruteForcePaths(*g, {0, 8, 4});
  ASSERT_TRUE(paths.ok());
  EXPECT_EQ(paths->size(), 6u);
  auto fewer = BruteForcePaths(*g, {0, 8, 3});
  EXPECT_EQ(fewer->size(), 0u);
}

TEST(BruteForce, CompleteGraphCountMatchesFormula) {
  // K_4, s-t paths with <= 3 hops: direct (1), one intermediate (2),
  // two intermediates (2) = 5.
  auto g = GenerateComplete(4);
  auto paths = BruteForcePaths(*g, {0, 3, 3});
  ASSERT_TRUE(paths.ok());
  EXPECT_EQ(paths->size(), 5u);
}

TEST(BruteForce, PaperExampleCounts) {
  Graph g = PaperFigure1Graph();
  std::vector<uint64_t> expected = {3, 3, 1, 2, 2};
  auto queries = PaperFigure1Queries();
  for (size_t i = 0; i < queries.size(); ++i) {
    auto paths = BruteForcePaths(g, queries[i]);
    ASSERT_TRUE(paths.ok());
    EXPECT_EQ(paths->size(), expected[i])
        << "query " << i << " " << queries[i].ToString();
  }
}

TEST(BruteForce, PaperExampleQ0ExactPaths) {
  Graph g = PaperFigure1Graph();
  auto paths = BruteForcePaths(g, {0, 11, 5});
  ASSERT_TRUE(paths.ok());
  auto sorted = paths->ToSortedVectors();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0], (std::vector<VertexId>{0, 1, 7, 10, 12, 11}));
  EXPECT_EQ(sorted[1], (std::vector<VertexId>{0, 4, 9, 3, 6, 11}));
  EXPECT_EQ(sorted[2], (std::vector<VertexId>{0, 4, 9, 15, 6, 11}));
}

TEST(BruteForce, AllEmittedPathsAreSimpleAndValid) {
  Rng rng(5);
  auto g = GenerateErdosRenyi(40, 250, rng);
  auto paths = BruteForcePaths(*g, {0, 7, 5});
  ASSERT_TRUE(paths.ok());
  for (size_t i = 0; i < paths->size(); ++i) {
    PathView p = (*paths)[i];
    EXPECT_TRUE(IsSimplePath(p));
    EXPECT_TRUE(PathExistsInGraph(*g, p));
    EXPECT_EQ(p.front(), 0u);
    EXPECT_EQ(p.back(), 7u);
    EXPECT_LE(p.size() - 1, 5u);
  }
}

TEST(BruteForce, RejectsInvalidQuery) {
  auto g = GeneratePath(5);
  EXPECT_FALSE(BruteForcePaths(*g, {0, 0, 3}).ok());
  EXPECT_FALSE(BruteForcePaths(*g, {0, 4, 0}).ok());
}

}  // namespace
}  // namespace hcpath
