// Quickstart: build a graph, run a batch of HC-s-t path queries with
// BatchEnum+, and print every path of the first query.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "hcpath/hcpath.h"

using namespace hcpath;

int main() {
  // A small random social-network-like graph.
  Rng rng(7);
  auto graph = GenerateSmallWorld(/*n=*/2000, /*k_out=*/6,
                                  /*rewire_p=*/0.05, rng);
  if (!graph.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }

  // Three queries processed as one batch; the first two are similar on
  // purpose (same source neighborhood) so BatchEnum can share work.
  std::vector<PathQuery> queries = {
      {10, 40, 6},
      {11, 40, 6},
      {500, 515, 5},
  };

  BatchPathEnumerator enumerator(*graph);
  BatchOptions options;     // defaults: BatchEnum+, gamma = 0.5
  options.num_threads = 0;  // use every core; results are identical anyway
  CollectingSink sink(queries.size());
  auto result = enumerator.Run(queries, options, &sink);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  for (size_t i = 0; i < queries.size(); ++i) {
    std::printf("%s -> %llu paths\n", queries[i].ToString().c_str(),
                static_cast<unsigned long long>(result->path_counts[i]));
  }
  std::printf("\nPaths of query 0:\n");
  const PathSet& paths = sink.paths(0);
  for (size_t i = 0; i < std::min<size_t>(paths.size(), 10); ++i) {
    std::printf("  %s\n", PathToString(paths[i]).c_str());
  }
  if (paths.size() > 10) {
    std::printf("  ... and %zu more\n", paths.size() - 10);
  }
  std::printf("\nStats: %s\n", result->stats.ToString().c_str());
  return 0;
}
