// Pathway queries in biological networks (paper §I): find the chains of
// interactions between pairs of substances. Interaction networks are
// locally dense (complexes, pathways), so bounded-hop simple paths between
// related substances are numerous, and batches of queries against the same
// pathway share most of their computation.
//
//   ./build/examples/pathway_queries

#include <cstdio>

#include "hcpath/hcpath.h"

using namespace hcpath;

namespace {

/// Reports each interaction chain as A -| B -| C ... with its length.
class ChainSink : public PathSink {
 public:
  explicit ChainSink(size_t n) : lengths_(n) {}
  void OnPath(size_t query_index, PathView path) override {
    lengths_[query_index].push_back(path.size() - 1);
    if (printed_ < 6) {
      std::printf("    chain[q%zu]: %s\n", query_index,
                  PathToString(path).c_str());
      ++printed_;
    }
  }
  /// Histogram of chain lengths for one query.
  std::vector<size_t> LengthHistogram(size_t qi, size_t max_k) const {
    std::vector<size_t> hist(max_k + 1, 0);
    for (size_t len : lengths_[qi]) ++hist[len];
    return hist;
  }

 private:
  std::vector<std::vector<size_t>> lengths_;
  int printed_ = 0;
};

}  // namespace

int main() {
  // Synthetic interactome: small-world (locally dense complexes with a few
  // long-range regulatory links).
  Rng rng(1717);
  auto net = GenerateSmallWorld(/*n=*/8000, /*k_out=*/8,
                                /*rewire_p=*/0.02, rng);
  if (!net.ok()) return 1;

  // Substances of interest: receptors 100..102 against effectors 160, 170.
  std::vector<PathQuery> queries = {
      {100, 130, 5}, {101, 130, 5}, {102, 130, 5},
      {100, 135, 5}, {101, 135, 5},
  };

  BatchPathEnumerator enumerator(*net);
  BatchOptions options;
  options.max_paths_per_query = 200000;
  options.num_threads = 0;  // all cores; deterministic output either way
  ChainSink sink(queries.size());
  std::printf("Sample interaction chains:\n");
  auto result = enumerator.Run(queries, options, &sink);
  if (!result.ok()) {
    std::fprintf(stderr, "failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("\nChains per substance pair (by length):\n");
  for (size_t i = 0; i < queries.size(); ++i) {
    std::printf("  %u ->* %u : %llu chains  [", queries[i].s, queries[i].t,
                static_cast<unsigned long long>(result->path_counts[i]));
    auto hist = sink.LengthHistogram(i, 5);
    for (size_t len = 1; len <= 5; ++len) {
      std::printf(" %zu-hop:%zu", len, hist[len]);
    }
    std::printf(" ]\n");
  }
  std::printf("\nShared computation: %llu dominating HC-s path queries, "
              "%llu cache splices\n",
              static_cast<unsigned long long>(
                  result->stats.dominating_nodes),
              static_cast<unsigned long long>(
                  result->stats.shortcut_splices));
  return 0;
}
