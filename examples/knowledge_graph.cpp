// Knowledge graph completion (paper §I): entities connected by many short
// paths tend to be related. For a batch of candidate entity pairs, count
// the HC-s-t paths between them and rank the pairs — a basic path-feature
// extractor for link prediction. Candidate pairs usually cluster around a
// few head entities, which is exactly the batch-sharing case.
//
//   ./build/examples/knowledge_graph

#include <algorithm>
#include <cstdio>

#include "bfs/bfs.h"
#include "hcpath/hcpath.h"

using namespace hcpath;

int main() {
  // A synthetic KG: power-law entity graph (relations collapsed to edges).
  Rng rng(99);
  auto kg = GenerateBarabasiAlbert(/*n=*/20000, /*out_degree=*/4, rng);
  if (!kg.ok()) return 1;

  // Candidate pairs: for three "head" entities, score candidate tails
  // from each head's 4-hop neighborhood (in a real completion pipeline the
  // shortlist comes from an embedding model; unreachable tails would score
  // zero anyway).
  std::vector<VertexId> heads = {50, 51, 1234};
  std::vector<PathQuery> queries;
  Rng pick(5);
  for (VertexId head : heads) {
    VertexDistMap reach = HopCappedBfs(*kg, head, 4, Direction::kForward);
    const auto& candidates = reach.SortedKeys();
    for (int c = 0; c < 6 && candidates.size() > 1; ++c) {
      VertexId tail = candidates[pick.NextBounded(candidates.size())];
      if (tail == head) continue;
      queries.push_back({head, tail, 4});
    }
  }

  BatchPathEnumerator enumerator(*kg);
  BatchOptions options;
  options.algorithm = Algorithm::kBatchEnumPlus;
  options.gamma = 0.3;  // head-entity queries are similar; merge eagerly
  options.max_paths_per_query = 50000;
  options.num_threads = 0;  // all cores; deterministic output either way

  auto result = enumerator.Run(queries, options);
  if (!result.ok()) {
    std::fprintf(stderr, "failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // Rank pairs by path count (a crude relatedness score).
  std::vector<size_t> order(queries.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return result->path_counts[a] > result->path_counts[b];
  });

  std::printf("Candidate entity pairs ranked by 4-hop path support:\n");
  for (size_t rank = 0; rank < std::min<size_t>(order.size(), 10); ++rank) {
    size_t i = order[rank];
    std::printf("  #%zu  (e%u, e%u)  support=%llu\n", rank + 1,
                queries[i].s, queries[i].t,
                static_cast<unsigned long long>(result->path_counts[i]));
  }
  std::printf("\nBatch stats: %s\n", result->stats.ToString().c_str());
  return 0;
}
