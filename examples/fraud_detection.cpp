// Fraud detection in an e-commerce transaction network (paper §I).
//
// A cycle through a new transaction (s -> t) is a strong fraud signal: the
// money returns to its origin. When a batch of transactions arrives, each
// transaction (s, t) spawns the query q(t, s, k): every HC-t-s path closed
// by the new edge (s, t) is a constrained cycle. Batches of transactions
// often share accounts, which is exactly the sharing BatchEnum exploits.
//
//   ./build/examples/fraud_detection

#include <cstdio>
#include <map>

#include "hcpath/hcpath.h"

using namespace hcpath;

namespace {

/// Collects suspicious cycles, tagging them with the transaction id.
class FraudSink : public PathSink {
 public:
  void OnPath(size_t query_index, PathView path) override {
    ++cycles_per_tx_[query_index];
    if (examples_.size() < 5) {
      std::string cycle = PathToString(path);
      examples_.push_back("tx#" + std::to_string(query_index) +
                          " cycle: " + cycle + " + closing edge");
    }
  }
  const std::map<size_t, uint64_t>& cycles() const {
    return cycles_per_tx_;
  }
  const std::vector<std::string>& examples() const { return examples_; }

 private:
  std::map<size_t, uint64_t> cycles_per_tx_;
  std::vector<std::string> examples_;
};

}  // namespace

int main() {
  // Transaction history: accounts transfer money along directed edges.
  // A small-world graph models communities of trading accounts.
  Rng rng(2024);
  auto history = GenerateSmallWorld(/*n=*/5000, /*k_out=*/5,
                                    /*rewire_p=*/0.08, rng);
  if (!history.ok()) return 1;

  // A batch of incoming transactions (s -> t). Several involve the same
  // community of accounts — the batch has high query similarity.
  std::vector<std::pair<VertexId, VertexId>> transactions = {
      {115, 100}, {116, 100}, {115, 101}, {2015, 2000},
      {2016, 2000}, {3333, 3320},
  };
  constexpr int kMaxCycleLen = 6;  // flag cycles up to 6 hops + closing edge

  // One HC-s-t path query per transaction: paths t ->* s.
  std::vector<PathQuery> queries;
  for (auto [s, t] : transactions) {
    queries.push_back({t, s, kMaxCycleLen});
  }

  BatchPathEnumerator enumerator(*history);
  BatchOptions options;
  options.algorithm = Algorithm::kBatchEnumPlus;
  options.max_paths_per_query = 100000;  // alert threshold, not exhaustive
  options.num_threads = 0;  // ring-detection batches are cluster-parallel

  FraudSink sink;
  auto result = enumerator.Run(queries, options, &sink);
  if (!result.ok()) {
    std::fprintf(stderr, "batch failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("Screened %zu transactions against %u accounts (%llu "
              "transfers)\n\n",
              transactions.size(), history->NumVertices(),
              static_cast<unsigned long long>(history->NumEdges()));
  for (size_t i = 0; i < transactions.size(); ++i) {
    auto [s, t] = transactions[i];
    uint64_t cycles = result->path_counts[i];
    std::printf("tx#%zu %u -> %u : %llu closing cycle(s)%s\n", i, s, t,
                static_cast<unsigned long long>(cycles),
                cycles > 0 ? "  << REVIEW" : "");
  }
  std::printf("\nSample evidence:\n");
  for (const std::string& e : sink.examples()) {
    std::printf("  %s\n", e.c_str());
  }
  std::printf("\nBatch processed in %.3fs (shared %llu cached paths)\n",
              result->stats.total_seconds,
              static_cast<unsigned long long>(result->stats.cached_paths));
  return 0;
}
