// Minimal PathEngine walkthrough (docs/SERVICE.md): a long-lived engine
// serving a stream of hop-constrained path queries with micro-batch
// admission and the cross-batch endpoint distance cache.
//
//   ./build/service_quickstart [--vertices=20000] [--queries=256]

#include <cstdio>
#include <vector>

#include "hcpath/hcpath.h"
#include "util/flags.h"

using namespace hcpath;

int main(int argc, char** argv) {
  FlagSet flags;
  int64_t* vertices = flags.AddInt64("vertices", 20000, "graph size");
  int64_t* num_queries = flags.AddInt64("queries", 256, "stream length");
  int64_t* threads = flags.AddInt64("threads", 1, "engine compute threads");
  Status st = flags.Parse(argc, argv);
  if (st.code() == StatusCode::kNotFound) return 0;  // --help
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 flags.Usage().c_str());
    return 2;
  }

  Rng rng(42);
  Graph g = *GenerateBarabasiAlbert(static_cast<VertexId>(*vertices), 6, rng);

  // The engine outlives every request: it keeps the thread pool, the
  // recycled batch context, and the distance cache warm across batches.
  PathEngineOptions options;
  options.batch.num_threads = static_cast<int>(*threads);
  options.max_batch_size = 32;     // cut micro-batches at 32 queries...
  options.max_wait_seconds = 1e-3; // ...or after 1 ms, whichever first
  PathEngine engine(g, options);
  if (!engine.status().ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  // A skewed stream: one hot endpoint pair repeats, the rest are random —
  // the repeats are what the cross-batch distance cache feeds on.
  std::vector<std::future<QueryResult>> futures;
  for (int64_t i = 0; i < *num_queries; ++i) {
    PathQuery q;
    if (i % 3 == 0) {
      q = {1, 99, 5};  // hot
    } else {
      q.s = static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
      q.t = static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
      if (q.s == q.t) q.t = (q.t + 1) % g.NumVertices();
      q.k = 4;
    }
    futures.push_back(engine.Submit(q));
  }
  engine.Flush();

  uint64_t total_paths = 0, errors = 0;
  for (auto& f : futures) {
    QueryResult r = f.get();
    if (r.status.ok()) {
      total_paths += r.path_count;
    } else {
      ++errors;
    }
  }

  PathEngineStats stats = engine.GetStats();
  const uint64_t probes =
      stats.distance_cache_hits + stats.distance_cache_misses;
  std::printf(
      "served %llu queries in %llu micro-batches: %llu paths, %llu errors\n"
      "distance cache: %llu/%llu endpoint builds served warm (%.0f%%)\n",
      static_cast<unsigned long long>(stats.queries_completed),
      static_cast<unsigned long long>(stats.batches_run),
      static_cast<unsigned long long>(total_paths),
      static_cast<unsigned long long>(errors),
      static_cast<unsigned long long>(stats.distance_cache_hits),
      static_cast<unsigned long long>(probes),
      probes > 0 ? 100.0 * static_cast<double>(stats.distance_cache_hits) /
                       static_cast<double>(probes)
                 : 0.0);
  return 0;
}
